//! Split finding over histogram bins (Step 2 of Table I).
//!
//! For every feature, every bin boundary is evaluated as a candidate split
//! point: the scan moves the split point left to right, accumulating bin
//! `G`/`H`/count into the left bucket and deriving the right bucket by
//! subtraction from the vertex totals (Figure 3). Records with missing
//! values are considered on **both** sides (the default-direction choice)
//! to pick the best option. Categorical fields follow the one-hot
//! optimization: each category's "yes" bin is a candidate with the "no"
//! side reconstructed by subtraction.
//!
//! The gain formula is XGBoost's second-order objective reduction with L2
//! regularization `lambda`, complexity penalty `gamma`, and a
//! `min_child_weight` constraint. This step is algorithmically significant
//! but short (it iterates over thousands of bins, not millions of
//! records), which is why Booster offloads it to the host.

use serde::{Deserialize, Serialize};

use crate::gradients::GradPair;
use crate::histogram::NodeHistogram;
use crate::preprocess::FieldBinning;

/// Regularization and constraint parameters for split evaluation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SplitParams {
    /// L2 regularization on leaf weights (XGBoost `lambda`).
    pub lambda: f64,
    /// Per-split complexity penalty (XGBoost `gamma`); a split is taken
    /// only if its gain exceeds this.
    pub gamma: f64,
    /// Minimum sum of `h` on each side of a split.
    pub min_child_weight: f64,
}

impl Default for SplitParams {
    fn default() -> Self {
        SplitParams { lambda: 1.0, gamma: 0.0, min_child_weight: 1.0 }
    }
}

/// The predicate of an internal tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitRule {
    /// Numeric: records whose bin index is `<= threshold_bin` go left,
    /// larger bins go right (the paper's `field >= upper-bin-boundary(i)`
    /// predicate sends the "true" side right).
    Numeric {
        /// Last bin index routed to the left child.
        threshold_bin: u32,
    },
    /// Categorical (one-hot feature test): records whose category equals
    /// `category` ("yes") go right; all others go left.
    Categorical {
        /// Category whose records go right.
        category: u32,
    },
}

/// The outcome of evaluating a vertex for splitting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitInfo {
    /// Field the predicate tests.
    pub field: u32,
    /// The predicate.
    pub rule: SplitRule,
    /// Records with the field absent follow this direction.
    pub default_left: bool,
    /// Objective gain of the split (already net of `gamma`... no: raw gain;
    /// callers compare against `gamma`). This is the raw objective
    /// reduction; `find_best_split` only returns candidates whose raw gain
    /// exceeds `gamma`.
    pub gain: f64,
    /// Gradient totals of the left side.
    pub left_grad: GradPair,
    /// Gradient totals of the right side.
    pub right_grad: GradPair,
    /// Record count of the left side.
    pub left_count: u64,
    /// Record count of the right side.
    pub right_count: u64,
}

/// Optimal leaf weight for gradient totals under L2 regularization.
#[inline]
pub fn leaf_weight(total: GradPair, lambda: f64) -> f64 {
    -total.g / (total.h + lambda)
}

/// Similarity score `G^2 / (H + lambda)` used by the gain formula.
#[inline]
fn score(gp: GradPair, lambda: f64) -> f64 {
    gp.g * gp.g / (gp.h + lambda)
}

/// Route a record's bin through a rule. Returns `true` for the left child.
#[inline]
pub fn goes_left(rule: SplitRule, default_left: bool, bin: u32, absent_bin: u32) -> bool {
    if bin == absent_bin {
        return default_left;
    }
    match rule {
        SplitRule::Numeric { threshold_bin } => bin <= threshold_bin,
        SplitRule::Categorical { category } => bin != category,
    }
}

/// Scan every feature's bins and return the best valid split, if any has
/// positive gain exceeding `gamma`. Also returns the number of bins
/// scanned (the Step-2 work offloaded to the host).
///
/// `field_mask` restricts the scan to fields whose entry is `true`
/// (column subsampling, stochastic GB); `None` allows every field. This
/// masked form is the single implementation — there is no separate
/// unmasked scan.
pub fn find_best_split(
    hist: &NodeHistogram,
    binnings: &[FieldBinning],
    params: &SplitParams,
    field_mask: Option<&[bool]>,
) -> (Option<SplitInfo>, u64) {
    let total = hist.total();
    let total_count = hist.total_count();
    let lambda = params.lambda;
    let parent_score = score(total, lambda);
    let mut best: Option<SplitInfo> = None;
    let mut bins_scanned = 0u64;

    let mut consider =
        |field: u32, rule: SplitRule, default_left: bool, left: GradPair, left_count: u64| {
            let right = total - left;
            let right_count = total_count - left_count;
            if left_count == 0 || right_count == 0 {
                return;
            }
            if left.h < params.min_child_weight || right.h < params.min_child_weight {
                return;
            }
            let gain = 0.5 * (score(left, lambda) + score(right, lambda) - parent_score);
            // Reject NaN explicitly: `gain <= gamma` alone would let it
            // through — with lambda == 0 and min_child_weight == 0 a
            // zero-gradient side scores 0/0.
            if gain.is_nan() || gain <= params.gamma {
                return;
            }
            if best.as_ref().is_none_or(|b| gain > b.gain) {
                best = Some(SplitInfo {
                    field,
                    rule,
                    default_left,
                    gain,
                    left_grad: left,
                    right_grad: right,
                    left_count,
                    right_count,
                });
            }
        };

    for (f, binning) in binnings.iter().enumerate() {
        if let Some(mask) = field_mask {
            if !mask[f] {
                continue;
            }
        }
        let lanes = hist.field(f);
        bins_scanned += lanes.len() as u64;
        let absent = lanes.get(binning.absent_bin() as usize);
        // With no absent records at this vertex, the two default-direction
        // candidates at each boundary differ only by `+ absent.grad` with
        // `absent.grad == (0.0, 0.0)` — additions of zero that can flip at
        // most the sign of a zero. Every downstream use (g*g, h + lambda,
        // h < min_child_weight, counts) is insensitive to the zero's sign,
        // so both candidates produce bit-identical gains, and under the
        // strictly-greater selection the one considered second can never
        // win. Skipping it halves the gain evaluations on such fields
        // without changing the selected split.
        let absent_empty = absent.count == 0;
        match binning {
            FieldBinning::Numeric(_) => {
                // Last bin is the absent bin; boundaries run over the rest.
                let value_bins = lanes.len() - 1;
                // Lane-wise cumulative pass: the running left-side sums
                // advance over the three contiguous SoA lanes directly
                // (same additions in the same order as the old
                // struct-per-bin scan — bit-identical candidates).
                let (gl, hl, cl) = (lanes.grad, lanes.hess, lanes.count);
                let mut cum_g = 0.0f64;
                let mut cum_h = 0.0f64;
                let mut cum_count = 0u64;
                // Split after bin i: bins 0..=i left, i+1.. right. The last
                // boundary (after the final value bin) separates nothing.
                for i in 0..value_bins.saturating_sub(1) {
                    cum_g += gl[i];
                    cum_h += hl[i];
                    cum_count += cl[i];
                    // An empty bin leaves the cumulative sums untouched, so
                    // both of its candidates are bit-for-bit the previous
                    // boundary's candidates — under the strictly-greater
                    // selection they can never win (and at i == 0 there is
                    // no previous boundary, so it is still evaluated).
                    if cl[i] == 0 && i > 0 {
                        continue;
                    }
                    let cum = GradPair::new(cum_g, cum_h);
                    let rule = SplitRule::Numeric { threshold_bin: i as u32 };
                    // Default right: absent records stay on the right side.
                    consider(f as u32, rule, false, cum, cum_count);
                    // Default left: absent records join the left side.
                    if !absent_empty {
                        consider(f as u32, rule, true, cum + absent.grad, cum_count + absent.count);
                    }
                }
            }
            FieldBinning::Categorical { categories } => {
                for c in 0..*categories {
                    let yes = lanes.get(c as usize);
                    if yes.count == 0 {
                        continue;
                    }
                    let rule = SplitRule::Categorical { category: c };
                    // "Yes" goes right; left = total - yes (- absent if the
                    // default is right).
                    // Default left: absent joins the "no"/left side.
                    consider(f as u32, rule, true, total - yes.grad, total_count - yes.count);
                    // Default right: absent joins the "yes"/right side.
                    if !absent_empty {
                        consider(
                            f as u32,
                            rule,
                            false,
                            total - yes.grad - absent.grad,
                            total_count - yes.count - absent.count,
                        );
                    }
                }
            }
        }
    }
    (best, bins_scanned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, RawValue};
    use crate::preprocess::BinnedDataset;
    use crate::schema::{DatasetSchema, FieldSchema};

    /// Labels perfectly separated by x >= 50: a numeric split must be found
    /// near the boundary with high gain.
    fn separable_numeric() -> (BinnedDataset, Vec<GradPair>) {
        let schema = DatasetSchema::new(vec![FieldSchema::numeric_with_bins("x", 16)]);
        let mut ds = Dataset::new(schema);
        for i in 0..100 {
            ds.push_record(&[RawValue::Num(i as f32)], if i < 50 { 0.0 } else { 1.0 });
        }
        let b = BinnedDataset::from_dataset(&ds);
        // squared error at margin 0.5: g = 0.5 - y
        let grads = (0..100).map(|i| GradPair::new(if i < 50 { 0.5 } else { -0.5 }, 1.0)).collect();
        (b, grads)
    }

    #[test]
    fn finds_separating_numeric_split() {
        let (data, grads) = separable_numeric();
        let rows: Vec<u32> = (0..100).collect();
        let mut h = NodeHistogram::zeroed(&data);
        h.bin_records(&data, &rows, &grads);
        let (split, scanned) = find_best_split(&h, data.binnings(), &SplitParams::default(), None);
        let s = split.expect("split must exist");
        assert_eq!(s.field, 0);
        assert!(scanned > 0);
        assert!(s.gain > 0.0);
        // Verify the split actually separates by simulating routing.
        let absent = data.binnings()[0].absent_bin();
        let mut left_pos = 0u32;
        let mut right_neg = 0u32;
        for r in 0..100usize {
            let left = goes_left(s.rule, s.default_left, data.bin(r, 0), absent);
            if left && r >= 50 {
                left_pos += 1;
            }
            if !left && r < 50 {
                right_neg += 1;
            }
        }
        // Quantile bin edges may not land exactly at 50, but the split
        // should be close: allow small leakage.
        assert!(left_pos + right_neg <= 8, "split not separating: {left_pos}+{right_neg}");
    }

    #[test]
    fn categorical_split_isolates_category() {
        // Category 2 has all the positive labels.
        let schema = DatasetSchema::new(vec![FieldSchema::categorical("c", 4)]);
        let mut ds = Dataset::new(schema);
        for i in 0..200 {
            let c = (i % 4) as u32;
            ds.push_record(&[RawValue::Cat(c)], if c == 2 { 1.0 } else { 0.0 });
        }
        let data = BinnedDataset::from_dataset(&ds);
        let grads: Vec<GradPair> = (0..200)
            .map(|i| {
                let y = if i % 4 == 2 { 1.0 } else { 0.0 };
                GradPair::new(0.25 - y, 1.0)
            })
            .collect();
        let mut h = NodeHistogram::zeroed(&data);
        h.bin_records(&data, &(0..200).collect::<Vec<_>>(), &grads);
        let (split, _) = find_best_split(&h, data.binnings(), &SplitParams::default(), None);
        let s = split.expect("split must exist");
        assert_eq!(s.rule, SplitRule::Categorical { category: 2 });
        assert_eq!(s.right_count, 50);
        assert_eq!(s.left_count, 150);
    }

    #[test]
    fn no_split_on_pure_node() {
        // All gradients identical and labels constant: no gain anywhere.
        let schema = DatasetSchema::new(vec![FieldSchema::numeric_with_bins("x", 8)]);
        let mut ds = Dataset::new(schema);
        for i in 0..50 {
            ds.push_record(&[RawValue::Num(i as f32)], 1.0);
        }
        let data = BinnedDataset::from_dataset(&ds);
        let grads = vec![GradPair::new(0.0, 1.0); 50];
        let mut h = NodeHistogram::zeroed(&data);
        h.bin_records(&data, &(0..50).collect::<Vec<_>>(), &grads);
        let (split, _) = find_best_split(&h, data.binnings(), &SplitParams::default(), None);
        assert!(split.is_none(), "pure node must not split: {split:?}");
    }

    #[test]
    fn gamma_suppresses_weak_splits() {
        let (data, grads) = separable_numeric();
        let mut h = NodeHistogram::zeroed(&data);
        h.bin_records(&data, &(0..100).collect::<Vec<_>>(), &grads);
        let (strong, _) = find_best_split(&h, data.binnings(), &SplitParams::default(), None);
        let gain = strong.unwrap().gain;
        let params = SplitParams { gamma: gain + 1.0, ..Default::default() };
        let (suppressed, _) = find_best_split(&h, data.binnings(), &params, None);
        assert!(suppressed.is_none());
    }

    #[test]
    fn nan_gains_are_rejected() {
        // lambda == 0 && min_child_weight == 0 with all-zero gradient
        // pairs makes every score 0/0 = NaN; the scan must return no
        // split rather than a NaN-gain one (which would corrupt
        // best-split selection and panic the leaf-wise priority queue).
        let (data, _) = separable_numeric();
        let grads = vec![GradPair::new(0.0, 0.0); 100];
        let mut h = NodeHistogram::zeroed(&data);
        h.bin_records(&data, &(0..100).collect::<Vec<_>>(), &grads);
        let params = SplitParams { lambda: 0.0, gamma: 0.0, min_child_weight: 0.0 };
        let (split, _) = find_best_split(&h, data.binnings(), &params, None);
        assert!(split.is_none(), "NaN gain must not be selected: {split:?}");
    }

    #[test]
    fn min_child_weight_blocks_tiny_children() {
        let (data, grads) = separable_numeric();
        let mut h = NodeHistogram::zeroed(&data);
        h.bin_records(&data, &(0..100).collect::<Vec<_>>(), &grads);
        // Each record has h=1.0; requiring 1000 on each side is impossible.
        let params = SplitParams { min_child_weight: 1000.0, ..Default::default() };
        let (split, _) = find_best_split(&h, data.binnings(), &params, None);
        assert!(split.is_none());
    }

    #[test]
    fn default_direction_considers_missing_on_both_sides() {
        // Missing records all have positive-label gradients; putting them
        // on the right (with the x>=50 positives) must beat default-left.
        let schema = DatasetSchema::new(vec![FieldSchema::numeric_with_bins("x", 16)]);
        let mut ds = Dataset::new(schema);
        for i in 0..100 {
            ds.push_record(&[RawValue::Num(i as f32)], if i < 50 { 0.0 } else { 1.0 });
        }
        for _ in 0..20 {
            ds.push_record(&[RawValue::Missing], 1.0);
        }
        let data = BinnedDataset::from_dataset(&ds);
        let grads: Vec<GradPair> = (0..120)
            .map(|i| {
                let y = if i >= 50 { 1.0 } else { 0.0 };
                GradPair::new(0.5 - y, 1.0)
            })
            .collect();
        let mut h = NodeHistogram::zeroed(&data);
        h.bin_records(&data, &(0..120).collect::<Vec<_>>(), &grads);
        let (split, _) = find_best_split(&h, data.binnings(), &SplitParams::default(), None);
        let s = split.expect("split must exist");
        assert!(!s.default_left, "missing positives should default right");
    }

    #[test]
    fn split_sides_partition_totals() {
        let (data, grads) = separable_numeric();
        let mut h = NodeHistogram::zeroed(&data);
        h.bin_records(&data, &(0..100).collect::<Vec<_>>(), &grads);
        let (split, _) = find_best_split(&h, data.binnings(), &SplitParams::default(), None);
        let s = split.unwrap();
        assert_eq!(s.left_count + s.right_count, 100);
        let sum = s.left_grad + s.right_grad;
        assert!((sum.g - h.total().g).abs() < 1e-9);
        assert!((sum.h - h.total().h).abs() < 1e-9);
    }

    #[test]
    fn leaf_weight_formula() {
        let w = leaf_weight(GradPair::new(-10.0, 4.0), 1.0);
        assert!((w - 2.0).abs() < 1e-12);
    }

    /// Two copies of the separable field: the mask (column subsampling)
    /// must steer the scan to whichever copy is allowed, and masked-out
    /// fields must not even be counted as scanned bins.
    #[test]
    fn field_mask_restricts_scan_and_bin_counts() {
        let schema = DatasetSchema::new(vec![
            FieldSchema::numeric_with_bins("a", 16),
            FieldSchema::numeric_with_bins("b", 16),
        ]);
        let mut ds = Dataset::new(schema);
        for i in 0..100 {
            let v = RawValue::Num(i as f32);
            ds.push_record(&[v, v], if i < 50 { 0.0 } else { 1.0 });
        }
        let data = BinnedDataset::from_dataset(&ds);
        let grads: Vec<GradPair> =
            (0..100).map(|i| GradPair::new(if i < 50 { 0.5 } else { -0.5 }, 1.0)).collect();
        let mut h = NodeHistogram::zeroed(&data);
        h.bin_records(&data, &(0..100).collect::<Vec<_>>(), &grads);
        let params = SplitParams::default();

        let (unmasked, all_bins) = find_best_split(&h, data.binnings(), &params, None);
        let unmasked = unmasked.expect("split exists");
        for (field, mask) in [(0u32, [true, false]), (1u32, [false, true])] {
            let (s, bins) = find_best_split(&h, data.binnings(), &params, Some(&mask));
            let s = s.expect("masked split exists");
            assert_eq!(s.field, field);
            // Identical data in both fields: the gain must match the
            // unmasked winner exactly.
            assert_eq!(s.gain.to_bits(), unmasked.gain.to_bits());
            assert!(bins < all_bins, "masked scan {bins} vs full {all_bins}");
        }
    }

    #[test]
    fn all_false_mask_yields_no_split() {
        let (data, grads) = separable_numeric();
        let mut h = NodeHistogram::zeroed(&data);
        h.bin_records(&data, &(0..100).collect::<Vec<_>>(), &grads);
        let (split, bins) =
            find_best_split(&h, data.binnings(), &SplitParams::default(), Some(&[false]));
        assert!(split.is_none());
        assert_eq!(bins, 0);
    }
}
