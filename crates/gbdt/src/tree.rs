//! Decision trees and their flat table encoding.
//!
//! A trained tree is a vector of nodes (index 0 = root). For Step 5 and
//! batch inference the tree is lowered to a [`TreeTable`] — the paper's
//! "well-known idea of mapping the newly-grown tree to a table where each
//! entry captures a vertex by encoding its predicate and pointers to the
//! vertex's left and right children" (Section III-B), with fields
//! *renumbered* among the fields the tree actually uses so the BU can index
//! the fetched single-field columns compactly.

use serde::{Deserialize, Serialize};

use crate::preprocess::BinnedDataset;
use crate::split::{goes_left, SplitRule};

/// One tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Internal decision node.
    Internal {
        /// Field tested by the predicate.
        field: u32,
        /// The predicate.
        rule: SplitRule,
        /// Direction taken by records with the field absent.
        default_left: bool,
        /// Index of the left child.
        left: u32,
        /// Index of the right child.
        right: u32,
    },
    /// Leaf carrying the weak prediction `w`.
    Leaf {
        /// Leaf weight (before learning-rate shrinkage is applied by the
        /// trainer).
        weight: f64,
    },
}

/// A regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// Build from nodes. Node 0 must be the root.
    pub fn new(nodes: Vec<Node>) -> Self {
        assert!(!nodes.is_empty(), "tree needs at least a root");
        Tree { nodes }
    }

    /// A single-leaf tree.
    pub fn leaf(weight: f64) -> Self {
        Tree { nodes: vec![Node::Leaf { weight }] }
    }

    /// The nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Leaf count.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
    }

    /// Maximum root-to-leaf edge count.
    pub fn depth(&self) -> u32 {
        self.depth_from(0)
    }

    fn depth_from(&self, idx: u32) -> u32 {
        match &self.nodes[idx as usize] {
            Node::Leaf { .. } => 0,
            Node::Internal { left, right, .. } => {
                1 + self.depth_from(*left).max(self.depth_from(*right))
            }
        }
    }

    /// Traverse with a per-field bin lookup; returns `(leaf weight,
    /// path length in edges)`. Both lookups are generic (not `dyn`) so
    /// the per-node calls inline into the walk loop — this is the
    /// training Step-5 hot path.
    #[inline]
    pub fn traverse<F, A>(&self, bin_of_field: F, absent_of_field: A) -> (f64, u32)
    where
        F: Fn(usize) -> u32,
        A: Fn(usize) -> u32,
    {
        let mut idx = 0u32;
        let mut path = 0u32;
        loop {
            match &self.nodes[idx as usize] {
                Node::Leaf { weight } => return (*weight, path),
                Node::Internal { field, rule, default_left, left, right } => {
                    let f = *field as usize;
                    let bin = bin_of_field(f);
                    let absent = absent_of_field(f);
                    idx = if goes_left(*rule, *default_left, bin, absent) { *left } else { *right };
                    path += 1;
                }
            }
        }
    }

    /// Traverse for record `r` of a binned dataset. Monomorphized per
    /// row layout so the packed path stays a plain byte load.
    #[inline]
    pub fn traverse_binned(&self, data: &BinnedDataset, r: usize) -> (f64, u32) {
        let binnings = data.binnings();
        let absent = |f: usize| binnings[f].absent_bin();
        match data.row(r) {
            crate::preprocess::RowRef::Packed(row) => self.traverse(|f| u32::from(row[f]), absent),
            crate::preprocess::RowRef::Wide(row) => self.traverse(|f| row[f], absent),
        }
    }

    /// Sorted, deduplicated list of fields used by this tree's predicates
    /// (the set whose single-field columns Step 5 fetches).
    pub fn fields_used(&self) -> Vec<u32> {
        let mut fields: Vec<u32> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                Node::Internal { field, .. } => Some(*field),
                Node::Leaf { .. } => None,
            })
            .collect();
        fields.sort_unstable();
        fields.dedup();
        fields
    }

    /// Histogram of leaf depths weighted by nothing (structure only):
    /// `(depth, leaf count)` pairs, ascending by depth.
    pub fn leaf_depth_histogram(&self) -> Vec<(u32, usize)> {
        let mut counts: Vec<(u32, usize)> = Vec::new();
        self.collect_leaf_depths(0, 0, &mut counts);
        counts.sort_unstable();
        counts
    }

    fn collect_leaf_depths(&self, idx: u32, depth: u32, out: &mut Vec<(u32, usize)>) {
        match &self.nodes[idx as usize] {
            Node::Leaf { .. } => {
                if let Some(e) = out.iter_mut().find(|(d, _)| *d == depth) {
                    e.1 += 1;
                } else {
                    out.push((depth, 1));
                }
            }
            Node::Internal { left, right, .. } => {
                self.collect_leaf_depths(*left, depth + 1, out);
                self.collect_leaf_depths(*right, depth + 1, out);
            }
        }
    }

    /// Lower to the flat table encoding used by the BUs.
    ///
    /// # Panics
    /// Panics if the tree cannot be encoded (see
    /// [`TreeTable::try_from_tree`]); use [`Tree::try_to_table`] to
    /// handle oversized trees gracefully.
    pub fn to_table(&self) -> TreeTable {
        TreeTable::from_tree(self)
    }

    /// Fallible lowering to the flat table encoding.
    pub fn try_to_table(&self) -> Result<TreeTable, TableLoweringError> {
        TreeTable::try_from_tree(self)
    }
}

/// Why a [`Tree`] cannot be lowered to the 16-byte [`TreeTable`]
/// encoding.
///
/// The table stores child pointers and renumbered field indices as
/// `u16`, so trees beyond those ranges (reachable e.g. via `LeafWise`
/// with a very large `max_leaves`) must be rejected instead of silently
/// truncating indices into a corrupt table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableLoweringError {
    /// The tree has more nodes than `u16` child pointers can address.
    TooManyNodes {
        /// Node count of the offending tree.
        nodes: usize,
        /// Largest encodable node count.
        max: usize,
    },
    /// The tree tests more distinct fields than the `u16` renumbering
    /// can express (`u16::MAX` is reserved as the leaf sentinel).
    TooManyFields {
        /// Distinct fields used by the offending tree.
        fields: usize,
        /// Largest encodable field count.
        max: usize,
    },
}

impl std::fmt::Display for TableLoweringError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableLoweringError::TooManyNodes { nodes, max } => write!(
                f,
                "tree has {nodes} nodes but a tree table addresses at most {max} \
                 (u16 child pointers); split it or lower max_leaves"
            ),
            TableLoweringError::TooManyFields { fields, max } => write!(
                f,
                "tree tests {fields} distinct fields but the u16 renumbering \
                 encodes at most {max}"
            ),
        }
    }
}

impl std::error::Error for TableLoweringError {}

/// One fixed-size table entry (the SRAM-resident encoding; 16 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableEntry {
    /// Renumbered field index into [`TreeTable::fields_used`]
    /// (`u16::MAX` for leaves).
    pub field_renum: u16,
    /// Entry kind: 0 = numeric internal, 1 = categorical internal,
    /// 2 = leaf.
    pub kind: u8,
    /// Default direction for absent values (internal nodes).
    pub default_left: bool,
    /// Threshold bin (numeric) or category (categorical); unused for
    /// leaves.
    pub threshold: u32,
    /// Left child entry index (internal) — leaves store 0.
    pub left: u16,
    /// Right child entry index (internal) — leaves store 0.
    pub right: u16,
    /// Leaf weight (f32, as stored on chip); 0 for internal nodes.
    pub weight: f32,
}

/// Size in bytes of one table entry as laid out in a BU SRAM.
pub const TABLE_ENTRY_BYTES: usize = 16;

/// Flat tree table with field renumbering (Section III-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeTable {
    /// Entries; index 0 is the root.
    pub entries: Vec<TableEntry>,
    /// Original field ids in renumbered order: `fields_used[renum] = field`.
    pub fields_used: Vec<u32>,
}

/// Largest node count a [`TreeTable`] can address: child pointers are
/// `u16`, so indices run `0..=u16::MAX`.
pub const MAX_TABLE_NODES: usize = u16::MAX as usize + 1;

/// Largest number of distinct fields a [`TreeTable`] can renumber
/// (`u16::MAX` itself is the leaf sentinel in `field_renum`).
pub const MAX_TABLE_FIELDS: usize = u16::MAX as usize;

impl TreeTable {
    /// Lower a tree into table form.
    ///
    /// # Panics
    /// Panics if the tree cannot be encoded (see
    /// [`TreeTable::try_from_tree`] for the fallible form).
    pub fn from_tree(tree: &Tree) -> Self {
        Self::try_from_tree(tree).unwrap_or_else(|e| panic!("tree table lowering failed: {e}"))
    }

    /// Lower a tree into table form, rejecting trees whose node count or
    /// field count exceeds what the `u16`-indexed entries can encode —
    /// such trees would previously truncate child indices silently and
    /// produce corrupt tables.
    pub fn try_from_tree(tree: &Tree) -> Result<Self, TableLoweringError> {
        if tree.num_nodes() > MAX_TABLE_NODES {
            return Err(TableLoweringError::TooManyNodes {
                nodes: tree.num_nodes(),
                max: MAX_TABLE_NODES,
            });
        }
        let fields_used = tree.fields_used();
        if fields_used.len() > MAX_TABLE_FIELDS {
            return Err(TableLoweringError::TooManyFields {
                fields: fields_used.len(),
                max: MAX_TABLE_FIELDS,
            });
        }
        let renum = |field: u32| -> u16 {
            fields_used.binary_search(&field).expect("field in fields_used") as u16
        };
        let entries = tree
            .nodes()
            .iter()
            .map(|n| match n {
                Node::Leaf { weight } => TableEntry {
                    field_renum: u16::MAX,
                    kind: 2,
                    default_left: false,
                    threshold: 0,
                    left: 0,
                    right: 0,
                    weight: *weight as f32,
                },
                Node::Internal { field, rule, default_left, left, right } => {
                    let (kind, threshold) = match rule {
                        SplitRule::Numeric { threshold_bin } => (0u8, *threshold_bin),
                        SplitRule::Categorical { category } => (1u8, *category),
                    };
                    TableEntry {
                        field_renum: renum(*field),
                        kind,
                        default_left: *default_left,
                        threshold,
                        left: *left as u16,
                        right: *right as u16,
                        weight: 0.0,
                    }
                }
            })
            .collect();
        Ok(TreeTable { entries, fields_used })
    }

    /// On-chip footprint of the table in bytes.
    pub fn byte_size(&self) -> usize {
        self.entries.len() * TABLE_ENTRY_BYTES
    }

    /// Walk the table for a record presented as renumbered-field bins.
    /// `bins[renum]` must be the record's bin in `fields_used[renum]`, and
    /// `absents[renum]` that field's absent bin. Returns `(weight, path)`.
    pub fn walk(&self, bins: &[u32], absents: &[u32]) -> (f32, u32) {
        let mut idx = 0usize;
        let mut path = 0u32;
        loop {
            let e = &self.entries[idx];
            if e.kind == 2 {
                return (e.weight, path);
            }
            let f = e.field_renum as usize;
            let bin = bins[f];
            let rule = if e.kind == 0 {
                SplitRule::Numeric { threshold_bin: e.threshold }
            } else {
                SplitRule::Categorical { category: e.threshold }
            };
            let left = goes_left(rule, e.default_left, bin, absents[f]);
            idx = if left { e.left as usize } else { e.right as usize };
            path += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// depth-2 tree: root tests field 3 (numeric, bin<=5 left);
    /// left child tests field 7 (cat == 2 right); leaves -1, 1, 2.
    fn sample_tree() -> Tree {
        Tree::new(vec![
            Node::Internal {
                field: 3,
                rule: SplitRule::Numeric { threshold_bin: 5 },
                default_left: false,
                left: 1,
                right: 2,
            },
            Node::Internal {
                field: 7,
                rule: SplitRule::Categorical { category: 2 },
                default_left: true,
                left: 3,
                right: 4,
            },
            Node::Leaf { weight: 2.0 },
            Node::Leaf { weight: -1.0 },
            Node::Leaf { weight: 1.0 },
        ])
    }

    #[test]
    fn structure_queries() {
        let t = sample_tree();
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_leaves(), 3);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.fields_used(), vec![3, 7]);
        assert_eq!(t.leaf_depth_histogram(), vec![(1, 1), (2, 2)]);
    }

    #[test]
    fn traversal_routes_correctly() {
        let t = sample_tree();
        let absent = |_f: usize| 100u32;
        // field3 bin 9 (>5) -> right leaf 2.0
        let (w, p) = t.traverse(|f| if f == 3 { 9 } else { 0 }, absent);
        assert_eq!((w, p), (2.0, 1));
        // field3 bin 2 (<=5), field7 cat 2 -> right leaf 1.0
        let (w, p) = t.traverse(|_| 2, absent);
        assert_eq!((w, p), (1.0, 2));
        // field3 bin 2, field7 cat 0 -> left leaf -1.0
        let (w, p) = t.traverse(|f| if f == 3 { 2 } else { 0 }, absent);
        assert_eq!((w, p), (-1.0, 2));
        // field3 absent -> default right (default_left=false)
        let (w, _) = t.traverse(|f| if f == 3 { 100 } else { 0 }, absent);
        assert_eq!(w, 2.0);
        // field7 absent -> default left
        let (w, _) = t.traverse(|f| if f == 3 { 0 } else { 100 }, absent);
        assert_eq!(w, -1.0);
    }

    #[test]
    fn table_matches_tree_traversal() {
        let t = sample_tree();
        let table = t.to_table();
        assert_eq!(table.fields_used, vec![3, 7]);
        assert_eq!(table.byte_size(), 5 * TABLE_ENTRY_BYTES);
        // Exhaustive check over small bin spaces: field3 bins 0..12 or
        // absent(100), field7 bins 0..4 or absent(100).
        let absent = |_f: usize| 100u32;
        for b3 in (0..12).chain([100]) {
            for b7 in (0..4).chain([100]) {
                let (w_tree, p_tree) = t.traverse(|f| if f == 3 { b3 } else { b7 }, absent);
                let (w_tab, p_tab) = table.walk(&[b3, b7], &[100, 100]);
                assert_eq!(w_tab as f64, w_tree, "bins ({b3},{b7})");
                assert_eq!(p_tab, p_tree, "bins ({b3},{b7})");
            }
        }
    }

    /// A left-leaning vine with `m` internal nodes and `m + 1` leaves
    /// (`2m + 1` nodes total): internal `i` hangs leaf `m + i` on its
    /// right and chains left to internal `i + 1`; the last internal's
    /// left child is the final leaf `2m`.
    fn vine_tree(m: usize) -> Tree {
        let mut nodes = Vec::with_capacity(2 * m + 1);
        for i in 0..m {
            let left = if i + 1 < m { i + 1 } else { 2 * m };
            nodes.push(Node::Internal {
                field: 0,
                rule: SplitRule::Numeric { threshold_bin: i as u32 },
                default_left: true,
                left: left as u32,
                right: (m + i) as u32,
            });
        }
        for _ in 0..=m {
            nodes.push(Node::Leaf { weight: 1.0 });
        }
        Tree::new(nodes)
    }

    #[test]
    fn lowering_accepts_the_largest_encodable_tree() {
        // 2m + 1 = 65535 nodes: every child index fits u16.
        let t = vine_tree(32_767);
        assert_eq!(t.num_nodes(), 65_535);
        let table = t.try_to_table().expect("65535 nodes must lower");
        assert_eq!(table.entries.len(), 65_535);
        // The deepest internal's left pointer is the last leaf — the
        // index that silent `as u16` truncation used to corrupt.
        assert_eq!(table.entries[32_766].left, 65_534);
    }

    #[test]
    fn lowering_rejects_trees_beyond_u16_indices() {
        // 2m + 1 = 65537 nodes: child indices overflow u16.
        let t = vine_tree(32_768);
        match t.try_to_table() {
            Err(TableLoweringError::TooManyNodes { nodes, max }) => {
                assert_eq!(nodes, 65_537);
                assert_eq!(max, MAX_TABLE_NODES);
            }
            other => panic!("expected TooManyNodes, got {other:?}"),
        }
        let msg = t.try_to_table().unwrap_err().to_string();
        assert!(msg.contains("65537 nodes"), "descriptive error, got: {msg}");
    }

    #[test]
    #[should_panic(expected = "tree table lowering failed")]
    fn infallible_lowering_panics_descriptively_on_oversized_trees() {
        let _ = vine_tree(32_768).to_table();
    }

    #[test]
    fn single_leaf_tree() {
        let t = Tree::leaf(0.5);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.num_leaves(), 1);
        assert!(t.fields_used().is_empty());
        let (w, p) = t.traverse(|_| 0, |_: usize| 0);
        assert_eq!((w, p), (0.5, 0));
    }
}
