//! Training configuration, instrumentation types and the sequential
//! execution backend — plus the classic entry points (`train`,
//! `train_with`, `train_with_eval`), which are thin wrappers over the
//! unified growth engine in [`crate::grow`].
//!
//! The engine grows the ensemble one tree at a time (Step 6 of Table I)
//! and each tree in the order picked by
//! [`TrainConfig::growth`](crate::grow::GrowthStrategy), interleaving:
//!
//! 1. histogram binning of the relevant records (with the smaller-child
//!    subtraction optimization — only the child with fewer records is
//!    binned explicitly),
//! 2. split finding over histogram bins,
//! 3. single-predicate partitioning of the relevant records (reading only
//!    the predicate's single-field column, per the redundant format),
//! 5. one-tree traversal updating every record's `(g, h)` and the total
//!    loss.
//!
//! Every section is wall-clock timed ([`StepTimes`], regenerating Fig 6)
//! and work-counted, and — when enabled — logged as phase descriptors
//! ([`PhaseLog`]) that the `booster-sim` timing models consume.

use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::columnar::{ColumnRef, ColumnarMirror};
use crate::gradients::{GradPair, Loss, Objective};
use crate::grow::{grow_forest, grow_forest_with_eval, GrowthStrategy};
use crate::histogram::{bin_field_dense, bin_field_gathered, sum_grad_pairs_dense, NodeHistogram};
use crate::metrics::EvalMetric;
use crate::partition::partition_rows;
use crate::phases::PhaseLog;
use crate::predict::Model;
use crate::preprocess::BinnedDataset;
use crate::split::{SplitParams, SplitRule};
use crate::tree::Tree;

/// Pluggable execution backend for the record-heavy steps (1, 3 and 5).
///
/// The sequential backend reproduces the paper's single-thread runs
/// (Fig 6); the rayon backend in [`crate::parallel`] reproduces the
/// multicore software implementation of Section II-D (record-partitioned
/// private histograms + reduction).
pub trait StepExecutor: Sync {
    /// Step 1: bin `rows` into `hist`; returns the number of histogram
    /// updates performed. Backends may stream either the row-major
    /// matrix of `data` or the per-field columns of `columnar`
    /// (field-parallel binning) — both orders are bit-identical per bin.
    fn bin_records(
        &self,
        data: &BinnedDataset,
        columnar: &ColumnarMirror,
        rows: &[u32],
        grads: &[GradPair],
        hist: &mut NodeHistogram,
    ) -> u64;

    /// Step 3: partition `rows` by a predicate over a single-field column.
    /// Must be order-preserving. `field` names the column's field index —
    /// local backends read the data through `column` directly, while
    /// remote backends ship `field` so workers can resolve their own
    /// shard's column.
    fn partition(
        &self,
        rows: &[u32],
        column: ColumnRef<'_>,
        field: usize,
        rule: SplitRule,
        default_left: bool,
        absent_bin: u32,
    ) -> (Vec<u32>, Vec<u32>);

    /// Step 5: traverse `tree` for every record, update margins and
    /// gradients in place; returns `(sum of path lengths, total loss)`.
    fn traverse_update(
        &self,
        data: &BinnedDataset,
        tree: &Tree,
        loss: Loss,
        labels: &[f32],
        margins: &mut [f64],
        grads: &mut [GradPair],
    ) -> (u64, f64);
}

/// Single-threaded execution (the paper's sequential configuration).
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialExec;

impl StepExecutor for SequentialExec {
    fn bin_records(
        &self,
        data: &BinnedDataset,
        columnar: &ColumnarMirror,
        rows: &[u32],
        grads: &[GradPair],
        hist: &mut NodeHistogram,
    ) -> u64 {
        // Field-wise over the packed mirror columns: each field's SoA
        // lanes stay cache-resident for its whole pass, and each bin
        // still sees its records in row order — bit-identical to the
        // row-major kernel (`hist.bin_records`), just faster.
        if rows.len() == data.num_records() {
            // A row set as large as the dataset can only be the full
            // ascending range (ids are unique, in-range, and every
            // subset the grower builds is ascending) — stream the
            // columns and the gradient pairs with no indirection.
            debug_assert!(rows.iter().enumerate().all(|(i, &r)| i as u32 == r));
            for (f, mut lanes) in hist.lanes_mut().into_iter().enumerate() {
                bin_field_dense(columnar.column(f), grads, &mut lanes);
            }
            hist.add_total(sum_grad_pairs_dense(grads), rows.len() as u64);
        } else {
            // Sampled root or interior vertex: gather the subset's
            // gradient pairs once up front so every per-field pass
            // streams them sequentially.
            let gathered: Vec<GradPair> = rows.iter().map(|&r| grads[r as usize]).collect();
            for (f, mut lanes) in hist.lanes_mut().into_iter().enumerate() {
                bin_field_gathered(columnar.column(f), rows, &gathered, &mut lanes);
            }
            hist.add_total(sum_grad_pairs_dense(&gathered), rows.len() as u64);
        }
        rows.len() as u64 * data.num_fields() as u64
    }

    fn partition(
        &self,
        rows: &[u32],
        column: ColumnRef<'_>,
        _field: usize,
        rule: SplitRule,
        default_left: bool,
        absent_bin: u32,
    ) -> (Vec<u32>, Vec<u32>) {
        partition_rows(rows, column, rule, default_left, absent_bin)
    }

    fn traverse_update(
        &self,
        data: &BinnedDataset,
        tree: &Tree,
        loss: Loss,
        labels: &[f32],
        margins: &mut [f64],
        grads: &mut [GradPair],
    ) -> (u64, f64) {
        let mut sum_path = 0u64;
        let mut total_loss = 0.0f64;
        for r in 0..data.num_records() {
            let (w, path) = tree.traverse_binned(data, r);
            sum_path += u64::from(path);
            margins[r] += w;
            let y = f64::from(labels[r]);
            let (gp, lv) = loss.grad_value(margins[r], y);
            grads[r] = gp;
            total_loss += lv;
        }
        (sum_path, total_loss)
    }
}

/// Training configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of trees to grow (the paper trains 500 per dataset).
    pub num_trees: usize,
    /// Maximum tree depth (the paper uses up to 6).
    pub max_depth: u32,
    /// Shrinkage applied to leaf weights.
    pub learning_rate: f64,
    /// Training objective. Scalar objectives (squared error, logistic,
    /// pinball quantile) run the original one-output engine path
    /// bit-for-bit; softmax grows one tree per class per round and
    /// LambdaRank needs query groups on the training set.
    pub objective: Objective,
    /// Split-evaluation parameters (Step 2).
    pub split: SplitParams,
    /// Record phase descriptors for the timing simulators.
    pub collect_phases: bool,
    /// Stop adding trees once the mean loss stops improving by at least
    /// this amount (Step 6's "if the loss continues to decrease").
    pub min_loss_decrease: Option<f64>,
    /// Stochastic GB (Friedman 2002): fraction of records sampled per
    /// tree (1.0 disables sampling).
    pub subsample: f64,
    /// Fraction of fields considered for splits per tree (1.0 disables
    /// column sampling).
    pub colsample_bytree: f64,
    /// Fraction of the tree's fields re-drawn for every vertex (1.0
    /// disables per-node column sampling). Applied on top of
    /// `colsample_bytree`: each vertex's candidate set is a fresh subset
    /// of the tree's mask.
    pub colsample_bynode: f64,
    /// Seed for the sampling RNG (training is deterministic in it).
    pub seed: u64,
    /// Validation-driven early stopping. Requires an evaluation set
    /// ([`EvalSet`]): training stops once the eval metric has not
    /// improved for `patience` trees and the model is truncated back to
    /// its best iteration.
    pub early_stopping: Option<EarlyStopping>,
    /// Tree-growth order: vertex-wise (default), level-wise, or
    /// best-first leaf-wise under a leaf budget.
    pub growth: GrowthStrategy,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            num_trees: 100,
            max_depth: 6,
            learning_rate: 0.1,
            objective: Objective::SquaredError,
            split: SplitParams::default(),
            collect_phases: false,
            min_loss_decrease: None,
            subsample: 1.0,
            colsample_bytree: 1.0,
            colsample_bynode: 1.0,
            seed: 0,
            early_stopping: None,
            growth: GrowthStrategy::VertexWise,
        }
    }
}

/// Validation-driven early stopping: after each tree the held-out
/// [`EvalSet`] is scored with `metric`; once `patience` consecutive
/// trees fail to improve the best value by more than `min_delta`,
/// training stops and the model is truncated to its best iteration
/// (recorded in [`TrainReport::best_iteration`]).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EarlyStopping {
    /// Metric tracked on the evaluation set.
    pub metric: EvalMetric,
    /// Trees without improvement tolerated before stopping (≥ 1).
    pub patience: usize,
    /// Minimum improvement that resets the patience counter (≥ 0).
    pub min_delta: f64,
}

impl Default for EarlyStopping {
    fn default() -> Self {
        EarlyStopping { metric: EvalMetric::Loss, patience: 10, min_delta: 0.0 }
    }
}

/// A held-out evaluation set for the early-stopping pipeline.
///
/// The wrapped dataset must be binned with the **training binnings**
/// (tree predicates reference training bin indices) — use
/// [`BinnedDataset::from_dataset_with_binnings`](crate::preprocess::BinnedDataset::from_dataset_with_binnings)
/// or a joint-binning split helper such as
/// `booster_datagen::generate_binned_split`. Schema arity is checked
/// against the training set when training starts.
#[derive(Debug, Clone, Copy)]
pub struct EvalSet<'a> {
    data: &'a BinnedDataset,
}

impl<'a> EvalSet<'a> {
    /// Wrap a binned evaluation set.
    ///
    /// # Panics
    /// Panics if the set is empty (an empty set can never rank
    /// iterations).
    pub fn new(data: &'a BinnedDataset) -> Self {
        assert!(data.num_records() > 0, "evaluation set must not be empty");
        EvalSet { data }
    }

    /// The wrapped dataset.
    pub fn data(&self) -> &'a BinnedDataset {
        self.data
    }
}

/// A [`TrainConfig`] bound violation, reported by
/// [`TrainConfig::validate`] before any training work starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending configuration field.
    pub field: &'static str,
    /// Human-readable description of the violated bound.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Deepest tree the flat `u32` node indexing can sensibly address; far
/// beyond any useful GBDT depth (the paper trains at depth 6).
pub const MAX_SUPPORTED_DEPTH: u32 = 30;

impl TrainConfig {
    /// The paper's evaluation configuration: 500 trees of depth up to 6.
    pub fn paper() -> Self {
        TrainConfig { num_trees: 500, max_depth: 6, ..Default::default() }
    }

    /// Check every field against its documented bounds, returning a
    /// descriptive [`ConfigError`] for the first violation instead of
    /// failing deep inside the training loop.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err = |field: &'static str, message: String| Err(ConfigError { field, message });
        if self.num_trees == 0 {
            return err("num_trees", "must be at least 1".into());
        }
        if let Err(message) = self.objective.validate() {
            return err("objective", message);
        }
        if self.max_depth > MAX_SUPPORTED_DEPTH {
            return err(
                "max_depth",
                format!("must be at most {MAX_SUPPORTED_DEPTH}, got {}", self.max_depth),
            );
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return err(
                "learning_rate",
                format!("must be finite and positive, got {}", self.learning_rate),
            );
        }
        if !(self.subsample > 0.0 && self.subsample <= 1.0) {
            return err("subsample", format!("must be in (0, 1], got {}", self.subsample));
        }
        if !(self.colsample_bytree > 0.0 && self.colsample_bytree <= 1.0) {
            return err(
                "colsample_bytree",
                format!("must be in (0, 1], got {}", self.colsample_bytree),
            );
        }
        if !(self.colsample_bynode > 0.0 && self.colsample_bynode <= 1.0) {
            return err(
                "colsample_bynode",
                format!("must be in (0, 1], got {}", self.colsample_bynode),
            );
        }
        if let Some(es) = &self.early_stopping {
            if es.patience == 0 {
                return err("early_stopping.patience", "must be at least 1".into());
            }
            if !(es.min_delta.is_finite() && es.min_delta >= 0.0) {
                return err(
                    "early_stopping.min_delta",
                    format!("must be finite and non-negative, got {}", es.min_delta),
                );
            }
        }
        if !(self.split.lambda.is_finite() && self.split.lambda >= 0.0) {
            return err(
                "split.lambda",
                format!("must be finite and non-negative, got {}", self.split.lambda),
            );
        }
        if !(self.split.gamma.is_finite() && self.split.gamma >= 0.0) {
            return err(
                "split.gamma",
                format!("must be finite and non-negative, got {}", self.split.gamma),
            );
        }
        if !(self.split.min_child_weight.is_finite() && self.split.min_child_weight >= 0.0) {
            return err(
                "split.min_child_weight",
                format!("must be finite and non-negative, got {}", self.split.min_child_weight),
            );
        }
        if let Some(d) = self.min_loss_decrease {
            if !d.is_finite() {
                return err("min_loss_decrease", format!("must be finite, got {d}"));
            }
        }
        if let GrowthStrategy::LeafWise { max_leaves } = self.growth {
            if max_leaves < 2 {
                return err(
                    "growth.max_leaves",
                    format!("leaf-wise growth needs a budget of at least 2, got {max_leaves}"),
                );
            }
        }
        Ok(())
    }
}

/// Wall-clock time per algorithm step (Fig 6's breakdown).
#[derive(Debug, Clone, Copy, Default)]
pub struct StepTimes {
    /// Step 1: histogram binning.
    pub step1: Duration,
    /// Step 2: split finding.
    pub step2: Duration,
    /// Step 3: single-predicate partitioning.
    pub step3: Duration,
    /// Step 5: one-tree traversal + gradient update.
    pub step5: Duration,
    /// Everything else (initialization, bookkeeping).
    pub other: Duration,
}

impl StepTimes {
    /// Total measured time.
    pub fn total(&self) -> Duration {
        self.step1 + self.step2 + self.step3 + self.step5 + self.other
    }

    /// Fractions `[step1, step2, step3, step5, other]` of the total.
    pub fn fractions(&self) -> [f64; 5] {
        let t = self.total().as_secs_f64().max(1e-12);
        [
            self.step1.as_secs_f64() / t,
            self.step2.as_secs_f64() / t,
            self.step3.as_secs_f64() / t,
            self.step5.as_secs_f64() / t,
            self.other.as_secs_f64() / t,
        ]
    }
}

/// Work counters (architecture-independent operation counts).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct WorkCounters {
    /// Records explicitly histogram-binned (Step 1).
    pub step1_records: u64,
    /// Histogram bin updates = records binned × fields (Step 1).
    pub step1_updates: u64,
    /// Split scans performed (Step 2).
    pub step2_scans: u64,
    /// Bins scanned across all split scans (Step 2).
    pub step2_bins: u64,
    /// Records partitioned (Step 3).
    pub step3_records: u64,
    /// Records traversed (Step 5).
    pub step5_records: u64,
    /// Tree-table lookups = sum of path lengths (Step 5).
    pub step5_lookups: u64,
}

/// Everything the trainer reports besides the model.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Wall-clock per step.
    pub times: StepTimes,
    /// Operation counts per step.
    pub work: WorkCounters,
    /// Phase descriptors (present iff `collect_phases`).
    pub phase_log: Option<PhaseLog>,
    /// Mean training loss after each tree.
    pub loss_history: Vec<f64>,
    /// Per-tree evaluation metric on the held-out set (present iff an
    /// [`EvalSet`] was provided; one entry per tree actually trained).
    pub eval_history: Option<Vec<f64>>,
    /// Tree count of the best model under the eval metric (present iff
    /// an [`EvalSet`] was provided). With early stopping enabled the
    /// returned model is truncated to exactly this many trees.
    pub best_iteration: Option<usize>,
}

/// Train a model sequentially on a binned dataset with its columnar
/// mirror.
pub fn train(
    data: &BinnedDataset,
    columnar: &ColumnarMirror,
    cfg: &TrainConfig,
) -> (Model, TrainReport) {
    train_with(data, columnar, cfg, &SequentialExec)
}

/// Train with early stopping on a held-out evaluation set: stop once the
/// eval loss has not improved for `patience` consecutive trees, and trim
/// the model back to its best iteration. Returns the model, the report,
/// and the per-tree eval-loss history.
///
/// Compatibility wrapper over the engine's eval pipeline
/// ([`crate::grow::grow_forest_with_eval`]) with the default
/// [`EvalMetric::Loss`] and `min_delta = 0`; configure
/// [`TrainConfig::early_stopping`] directly for other metrics or the
/// parallel backend.
pub fn train_with_eval(
    data: &BinnedDataset,
    columnar: &ColumnarMirror,
    cfg: &TrainConfig,
    eval: &BinnedDataset,
    patience: usize,
) -> (Model, TrainReport, Vec<f64>) {
    let cfg = TrainConfig {
        early_stopping: Some(EarlyStopping { metric: EvalMetric::Loss, patience, min_delta: 0.0 }),
        ..cfg.clone()
    };
    let (model, report) =
        grow_forest_with_eval(data, columnar, &cfg, &SequentialExec, Some(&EvalSet::new(eval)));
    let history = report.eval_history.clone().expect("eval set provided");
    (model, report, history)
}

/// Train a model with an explicit execution backend. Compatibility
/// wrapper over the unified engine in [`crate::grow`]; the growth order
/// is taken from `cfg.growth`.
pub fn train_with(
    data: &BinnedDataset,
    columnar: &ColumnarMirror,
    cfg: &TrainConfig,
    exec: &dyn StepExecutor,
) -> (Model, TrainReport) {
    grow_forest(data, columnar, cfg, exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, RawValue};
    use crate::metrics;
    use crate::schema::{DatasetSchema, FieldSchema};

    fn xor_like_dataset(n: usize) -> (BinnedDataset, ColumnarMirror) {
        // y = 1 iff (x0 >= 0.5) xor (x1 >= 0.5): needs depth >= 2.
        let schema = DatasetSchema::new(vec![
            FieldSchema::numeric_with_bins("x0", 32),
            FieldSchema::numeric_with_bins("x1", 32),
        ]);
        let mut ds = Dataset::new(schema);
        let mut state = 0x12345678u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32) / (u32::MAX >> 1) as f32
        };
        for _ in 0..n {
            let a = rng();
            let b = rng();
            let y = ((a >= 0.5) ^ (b >= 0.5)) as u8 as f32;
            ds.push_record(&[RawValue::Num(a), RawValue::Num(b)], y);
        }
        let binned = BinnedDataset::from_dataset(&ds);
        let mirror = ColumnarMirror::from_binned(&binned);
        (binned, mirror)
    }

    #[test]
    fn training_reduces_loss_monotonically_at_start() {
        let (data, mirror) = xor_like_dataset(2000);
        let cfg = TrainConfig { num_trees: 20, max_depth: 3, ..Default::default() };
        let (_, report) = train(&data, &mirror, &cfg);
        assert_eq!(report.loss_history.len(), 20);
        assert!(
            report.loss_history.last().unwrap() < &report.loss_history[0],
            "loss must decrease: {:?}",
            report.loss_history
        );
    }

    #[test]
    fn learns_xor_to_high_accuracy() {
        let (data, mirror) = xor_like_dataset(4000);
        let cfg = TrainConfig {
            num_trees: 60,
            max_depth: 4,
            learning_rate: 0.3,
            objective: Objective::Logistic,
            ..Default::default()
        };
        let (model, _) = train(&data, &mirror, &cfg);
        let preds = model.predict_batch(&data);
        let labels: Vec<f64> = data.labels().iter().map(|&y| f64::from(y)).collect();
        let acc = metrics::accuracy(&preds, &labels, 0.5);
        assert!(acc > 0.95, "xor accuracy too low: {acc}");
    }

    #[test]
    fn respects_max_depth() {
        let (data, mirror) = xor_like_dataset(1000);
        for depth in [1u32, 2, 4] {
            let cfg = TrainConfig { num_trees: 5, max_depth: depth, ..Default::default() };
            let (model, _) = train(&data, &mirror, &cfg);
            assert!(model.max_depth() <= depth, "depth {depth} violated");
        }
    }

    #[test]
    fn phase_log_consistency() {
        let (data, mirror) = xor_like_dataset(1500);
        let cfg =
            TrainConfig { num_trees: 8, max_depth: 4, collect_phases: true, ..Default::default() };
        let (model, report) = train(&data, &mirror, &cfg);
        let log = report.phase_log.expect("phases collected");
        assert_eq!(log.trees.len(), model.num_trees());
        assert_eq!(log.num_records, 1500);
        // Work counters must agree with the log.
        assert_eq!(log.total_bin_updates(), report.work.step1_updates);
        assert_eq!(log.total_partition_records(), report.work.step3_records);
        assert_eq!(log.total_traversal_lookups(), report.work.step5_lookups);
        for (t, tp) in log.trees.iter().enumerate() {
            // Root is always explicitly binned with all records.
            assert_eq!(tp.nodes[0].bin.n_binned, 1500, "tree {t} root");
            assert_eq!(tp.traversal.n_records, 1500);
            // Partition children counts sum to the parent.
            for np in &tp.nodes {
                if let Some(p) = &np.partition {
                    assert_eq!(p.n_left + p.n_right, p.n_records);
                }
            }
        }
    }

    #[test]
    fn smaller_child_binning_saves_work() {
        let (data, mirror) = xor_like_dataset(2000);
        let cfg =
            TrainConfig { num_trees: 10, max_depth: 5, collect_phases: true, ..Default::default() };
        let (_, report) = train(&data, &mirror, &cfg);
        let log = report.phase_log.unwrap();
        // Explicitly-binned records must be at most half of reaching
        // records, over all non-root vertices.
        let mut binned = 0u64;
        let mut reaching = 0u64;
        for tp in &log.trees {
            for np in tp.nodes.iter().skip(1) {
                binned += np.bin.n_binned as u64;
                reaching += np.bin.n_reaching as u64;
            }
        }
        assert!(binned * 2 <= reaching + 1, "binned {binned} vs reaching {reaching}");
    }

    #[test]
    fn early_stop_on_no_improvement() {
        let (data, mirror) = xor_like_dataset(500);
        let cfg = TrainConfig {
            num_trees: 200,
            max_depth: 4,
            learning_rate: 0.5,
            min_loss_decrease: Some(1e-4),
            ..Default::default()
        };
        let (model, _) = train(&data, &mirror, &cfg);
        assert!(model.num_trees() < 200, "early stopping should have kicked in");
    }

    #[test]
    fn constant_labels_yield_single_leaf_trees() {
        let schema = DatasetSchema::new(vec![FieldSchema::numeric_with_bins("x", 8)]);
        let mut ds = Dataset::new(schema);
        for i in 0..100 {
            ds.push_record(&[RawValue::Num(i as f32)], 2.5);
        }
        let data = BinnedDataset::from_dataset(&ds);
        let mirror = ColumnarMirror::from_binned(&data);
        let cfg = TrainConfig { num_trees: 3, ..Default::default() };
        let (model, _) = train(&data, &mirror, &cfg);
        for t in &model.trees {
            assert_eq!(t.num_leaves(), 1, "pure labels must not split");
        }
        // Prediction equals the label mean.
        let p = model.predict_binned(&data, 0);
        assert!((p - 2.5).abs() < 1e-9, "prediction {p}");
    }

    #[test]
    fn early_stopping_trims_to_best_eval_iteration() {
        let (data, mirror) = xor_like_dataset(3000);
        // A *mismatched* eval set (different seed region): training loss
        // keeps falling, eval loss bottoms out earlier.
        let (eval, _) = {
            let schema = data.schema().clone();
            let mut ds = crate::dataset::Dataset::new(schema);
            let mut state = 0xDEADBEEFu64;
            let mut rng = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f32) / (u32::MAX >> 1) as f32
            };
            for _ in 0..1500 {
                let a = rng();
                let b = rng();
                // 15% label noise on the eval distribution.
                let mut y = (a >= 0.5) ^ (b >= 0.5);
                if rng() < 0.15 {
                    y = !y;
                }
                ds.push_record(&[RawValue::Num(a), RawValue::Num(b)], y as u8 as f32);
            }
            let binned = BinnedDataset::from_dataset(&ds);
            let mirror = ColumnarMirror::from_binned(&binned);
            (binned, mirror)
        };
        let cfg = TrainConfig {
            num_trees: 120,
            max_depth: 4,
            learning_rate: 0.4,
            objective: Objective::Logistic,
            ..Default::default()
        };
        let (model, _, history) = train_with_eval(&data, &mirror, &cfg, &eval, 10);
        assert!(!history.is_empty());
        assert!(model.num_trees() <= history.len());
        // The trimmed size is the argmin of the eval history.
        let argmin =
            history.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0 + 1;
        assert_eq!(model.num_trees(), argmin);
    }

    #[test]
    fn subsample_reduces_step1_work_but_still_learns() {
        let (data, mirror) = xor_like_dataset(4000);
        let full_cfg = TrainConfig {
            num_trees: 30,
            max_depth: 4,
            learning_rate: 0.3,
            objective: Objective::Logistic,
            ..Default::default()
        };
        let sub_cfg = TrainConfig { subsample: 0.5, seed: 5, ..full_cfg.clone() };
        let (_, full_rep) = train(&data, &mirror, &full_cfg);
        let (sub_model, sub_rep) = train(&data, &mirror, &sub_cfg);
        // Roughly half the records binned per tree.
        let ratio = sub_rep.work.step1_records as f64 / full_rep.work.step1_records as f64;
        assert!((0.35..0.65).contains(&ratio), "subsample work ratio {ratio}");
        // Still learns the function.
        let preds = sub_model.predict_batch(&data);
        let labels: Vec<f64> = data.labels().iter().map(|&y| f64::from(y)).collect();
        assert!(metrics::accuracy(&preds, &labels, 0.5) > 0.9);
    }

    #[test]
    fn colsample_restricts_fields_used() {
        let (data, mirror) = xor_like_dataset(2000);
        // With only 2 fields and colsample 0.5, some trees must use a
        // single field; every tree uses only masked fields by
        // construction — verify via determinism + convergence.
        let cfg = TrainConfig {
            num_trees: 20,
            max_depth: 3,
            colsample_bytree: 0.5,
            seed: 9,
            ..Default::default()
        };
        let (m1, _) = train(&data, &mirror, &cfg);
        let (m2, _) = train(&data, &mirror, &cfg);
        // Deterministic in the seed.
        assert_eq!(m1.trees, m2.trees);
        // Some tree used fewer fields than the full set.
        assert!(
            m1.trees.iter().any(|t| t.fields_used().len() < 2),
            "expected at least one single-field tree"
        );
    }

    #[test]
    fn different_seeds_give_different_stochastic_models() {
        let (data, mirror) = xor_like_dataset(2000);
        let base =
            TrainConfig { num_trees: 10, max_depth: 3, subsample: 0.6, ..Default::default() };
        let (m1, _) = train(&data, &mirror, &TrainConfig { seed: 1, ..base.clone() });
        let (m2, _) = train(&data, &mirror, &TrainConfig { seed: 2, ..base });
        assert_ne!(m1.trees, m2.trees);
    }

    #[test]
    #[should_panic(expected = "subsample")]
    fn invalid_subsample_rejected() {
        let (data, mirror) = xor_like_dataset(100);
        let cfg = TrainConfig { subsample: 0.0, ..Default::default() };
        let _ = train(&data, &mirror, &cfg);
    }

    #[test]
    fn validate_accepts_defaults_and_paper_config() {
        assert_eq!(TrainConfig::default().validate(), Ok(()));
        assert_eq!(TrainConfig::paper().validate(), Ok(()));
        // Depth 0 is a legal budget (leaf-only trees).
        assert_eq!(TrainConfig { max_depth: 0, ..Default::default() }.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_out_of_bound_fields() {
        let cases: Vec<(TrainConfig, &str)> = vec![
            (TrainConfig { num_trees: 0, ..Default::default() }, "num_trees"),
            (
                TrainConfig {
                    objective: Objective::Softmax { num_class: 1 },
                    ..Default::default()
                },
                "objective",
            ),
            (
                TrainConfig {
                    objective: Objective::PinballQuantile { alpha: 1.0 },
                    ..Default::default()
                },
                "objective",
            ),
            (
                TrainConfig {
                    objective: Objective::PinballQuantile { alpha: f64::NAN },
                    ..Default::default()
                },
                "objective",
            ),
            (TrainConfig { max_depth: 31, ..Default::default() }, "max_depth"),
            (TrainConfig { learning_rate: 0.0, ..Default::default() }, "learning_rate"),
            (TrainConfig { learning_rate: f64::NAN, ..Default::default() }, "learning_rate"),
            (TrainConfig { subsample: 0.0, ..Default::default() }, "subsample"),
            (TrainConfig { subsample: 1.5, ..Default::default() }, "subsample"),
            (TrainConfig { colsample_bytree: -0.1, ..Default::default() }, "colsample_bytree"),
            (TrainConfig { colsample_bynode: 0.0, ..Default::default() }, "colsample_bynode"),
            (TrainConfig { colsample_bynode: 2.0, ..Default::default() }, "colsample_bynode"),
            (
                TrainConfig {
                    early_stopping: Some(EarlyStopping { patience: 0, ..Default::default() }),
                    ..Default::default()
                },
                "early_stopping.patience",
            ),
            (
                TrainConfig {
                    early_stopping: Some(EarlyStopping {
                        min_delta: f64::NAN,
                        ..Default::default()
                    }),
                    ..Default::default()
                },
                "early_stopping.min_delta",
            ),
            (
                TrainConfig {
                    early_stopping: Some(EarlyStopping { min_delta: -0.5, ..Default::default() }),
                    ..Default::default()
                },
                "early_stopping.min_delta",
            ),
            (
                TrainConfig {
                    split: SplitParams { lambda: -1.0, ..Default::default() },
                    ..Default::default()
                },
                "split.lambda",
            ),
            (
                TrainConfig {
                    split: SplitParams { gamma: f64::INFINITY, ..Default::default() },
                    ..Default::default()
                },
                "split.gamma",
            ),
            (
                TrainConfig {
                    split: SplitParams { min_child_weight: -2.0, ..Default::default() },
                    ..Default::default()
                },
                "split.min_child_weight",
            ),
            (
                TrainConfig { min_loss_decrease: Some(f64::NAN), ..Default::default() },
                "min_loss_decrease",
            ),
            (
                TrainConfig {
                    growth: crate::grow::GrowthStrategy::LeafWise { max_leaves: 1 },
                    ..Default::default()
                },
                "growth.max_leaves",
            ),
        ];
        for (cfg, field) in cases {
            let err = cfg.validate().expect_err(field);
            assert_eq!(err.field, field);
            // The Display form names the field for panic messages.
            assert!(err.to_string().contains(field), "{err}");
        }
    }

    #[test]
    #[should_panic(expected = "num_trees")]
    fn invalid_num_trees_rejected_up_front() {
        let (data, mirror) = xor_like_dataset(50);
        let cfg = TrainConfig { num_trees: 0, ..Default::default() };
        let _ = train(&data, &mirror, &cfg);
    }

    /// A second xor-like table drawn from a different seed region with
    /// label noise: eval loss bottoms out before training loss does.
    fn noisy_eval_like(data: &BinnedDataset, n: usize, noise: f64) -> BinnedDataset {
        let schema = data.schema().clone();
        let mut ds = Dataset::new(schema);
        let mut state = 0xDEADBEEFu64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32) / (u32::MAX >> 1) as f32
        };
        for _ in 0..n {
            let a = rng();
            let b = rng();
            let mut y = (a >= 0.5) ^ (b >= 0.5);
            if f64::from(rng()) < noise {
                y = !y;
            }
            ds.push_record(&[RawValue::Num(a), RawValue::Num(b)], y as u8 as f32);
        }
        crate::preprocess::BinnedDataset::from_dataset_with_binnings(&ds, data.binnings().to_vec())
    }

    #[test]
    fn colsample_bynode_is_deterministic_and_changes_the_model() {
        let (data, mirror) = xor_like_dataset(2000);
        let base = TrainConfig { num_trees: 15, max_depth: 3, seed: 4, ..Default::default() };
        let bynode = TrainConfig { colsample_bynode: 0.5, ..base.clone() };
        let (m1, _) = train(&data, &mirror, &bynode);
        let (m2, _) = train(&data, &mirror, &bynode);
        assert_eq!(m1.trees, m2.trees, "deterministic in the seed");
        // Restricting per-node candidates must alter at least one split
        // relative to the unsampled model.
        let (full, _) = train(&data, &mirror, &base);
        assert_ne!(m1.trees, full.trees);
    }

    #[test]
    fn engine_eval_pipeline_stops_early_and_truncates() {
        use crate::grow::grow_forest_with_eval;
        let (data, mirror) = xor_like_dataset(3000);
        let eval = noisy_eval_like(&data, 1500, 0.15);
        let cfg = TrainConfig {
            num_trees: 120,
            max_depth: 4,
            learning_rate: 0.4,
            objective: Objective::Logistic,
            early_stopping: Some(EarlyStopping {
                metric: EvalMetric::Loss,
                patience: 8,
                min_delta: 0.0,
            }),
            ..Default::default()
        };
        let (model, report) = grow_forest_with_eval(
            &data,
            &mirror,
            &cfg,
            &SequentialExec,
            Some(&EvalSet::new(&eval)),
        );
        let history = report.eval_history.expect("eval history recorded");
        let best = report.best_iteration.expect("best iteration recorded");
        assert!(history.len() < 120, "patience must stop training ({} trees)", history.len());
        assert_eq!(model.num_trees(), best, "model truncated to its best iteration");
        // best is the argmin of the history (first occurrence).
        let argmin =
            history.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0 + 1;
        assert_eq!(best, argmin);
        // Exactly `patience` non-improving trees after the best one.
        assert_eq!(history.len(), best + 8);
        // loss_history covers every tree actually trained.
        assert_eq!(report.loss_history.len(), history.len());
    }

    #[test]
    fn early_stopped_model_is_a_bit_exact_prefix_of_the_full_run() {
        use crate::grow::grow_forest_with_eval;
        let (data, mirror) = xor_like_dataset(2000);
        let eval = noisy_eval_like(&data, 800, 0.2);
        let base = TrainConfig {
            num_trees: 60,
            max_depth: 3,
            learning_rate: 0.5,
            objective: Objective::Logistic,
            subsample: 0.8,
            colsample_bynode: 0.8,
            seed: 12,
            ..Default::default()
        };
        let es_cfg = TrainConfig {
            early_stopping: Some(EarlyStopping { patience: 5, ..Default::default() }),
            ..base.clone()
        };
        let (full, _) = train(&data, &mirror, &base);
        let (stopped, report) = grow_forest_with_eval(
            &data,
            &mirror,
            &es_cfg,
            &SequentialExec,
            Some(&EvalSet::new(&eval)),
        );
        // Early stopping only truncates: the surviving trees are the
        // exact trees the unstopped run grew (sampling streams are
        // independent of evaluation).
        assert!(stopped.num_trees() < full.num_trees());
        assert_eq!(stopped.trees[..], full.trees[..stopped.num_trees()]);
        assert_eq!(report.best_iteration, Some(stopped.num_trees()));
    }

    #[test]
    fn eval_without_early_stopping_records_history_without_truncating() {
        use crate::grow::grow_forest_with_eval;
        let (data, mirror) = xor_like_dataset(1500);
        let eval = noisy_eval_like(&data, 600, 0.1);
        let cfg = TrainConfig { num_trees: 12, max_depth: 3, ..Default::default() };
        let (model, report) = grow_forest_with_eval(
            &data,
            &mirror,
            &cfg,
            &SequentialExec,
            Some(&EvalSet::new(&eval)),
        );
        assert_eq!(model.num_trees(), 12, "no truncation without early stopping");
        assert_eq!(report.eval_history.as_deref().map(<[f64]>::len), Some(12));
        assert!(report.best_iteration.unwrap() <= 12);
    }

    #[test]
    fn auc_early_stopping_tracks_the_higher_is_better_direction() {
        use crate::grow::grow_forest_with_eval;
        let (data, mirror) = xor_like_dataset(2500);
        let eval = noisy_eval_like(&data, 1000, 0.2);
        let cfg = TrainConfig {
            num_trees: 80,
            max_depth: 4,
            learning_rate: 0.5,
            objective: Objective::Logistic,
            early_stopping: Some(EarlyStopping {
                metric: EvalMetric::Auc,
                patience: 6,
                min_delta: 0.0,
            }),
            ..Default::default()
        };
        let (model, report) = grow_forest_with_eval(
            &data,
            &mirror,
            &cfg,
            &SequentialExec,
            Some(&EvalSet::new(&eval)),
        );
        let history = report.eval_history.unwrap();
        let best = report.best_iteration.unwrap();
        assert_eq!(model.num_trees(), best);
        // best is the argmax (first occurrence) under AUC.
        let argmax = history
            .iter()
            .enumerate()
            .rev()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0
            + 1;
        assert_eq!(best, argmax);
        assert!(history.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    #[should_panic(expected = "early_stopping requires an evaluation set")]
    fn early_stopping_without_eval_set_is_rejected() {
        let (data, mirror) = xor_like_dataset(200);
        let cfg = TrainConfig {
            num_trees: 5,
            early_stopping: Some(EarlyStopping::default()),
            ..Default::default()
        };
        let _ = train(&data, &mirror, &cfg);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_eval_set_is_rejected() {
        let schema = DatasetSchema::new(vec![FieldSchema::numeric_with_bins("x", 4)]);
        let ds = Dataset::new(schema);
        let empty = BinnedDataset::from_dataset(&ds);
        let _ = EvalSet::new(&empty);
    }

    #[test]
    fn step_times_cover_total() {
        let (data, mirror) = xor_like_dataset(1000);
        let cfg = TrainConfig { num_trees: 5, ..Default::default() };
        let (_, report) = train(&data, &mirror, &cfg);
        let fr = report.times.fractions();
        let sum: f64 = fr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(report.times.total() > Duration::ZERO);
    }
}
