//! The unified tree-growth engine: one loop for every growth order ×
//! execution backend.
//!
//! Section II-A of the paper contrasts two ways of scheduling Steps 1–4
//! of Table I: **vertex-by-vertex** (explore one vertex at a time,
//! fetching each vertex's sparse relevant-record subset) and
//! **level-by-level** (explore all valid vertices of a level together,
//! streaming the whole dataset once per level at unit density). A third
//! order used by LightGBM-style systems — **leaf-wise / best-first**
//! growth, where the frontier leaf with the highest split gain is always
//! expanded next under a leaf budget — dominates the wall-clock
//! comparisons in Anghel et al.'s GBDT benchmarking study
//! (arXiv:1809.04559).
//!
//! All three orders perform the *same* per-vertex work: scan the vertex's
//! histograms for the best split (Step 2), partition its relevant records
//! by the chosen predicate (Step 3), then histogram-bin the smaller child
//! explicitly and derive the larger sibling by subtraction (Step 1, the
//! smaller-child optimization). They differ only in *which* frontier
//! vertex is expanded next. This module therefore implements a single
//! engine: a frontier of split-ready vertices plus a [`GrowthStrategy`]
//! that picks the expansion order — depth-first ([`GrowthStrategy::VertexWise`]),
//! breadth-first ([`GrowthStrategy::LevelWise`]), or a best-first priority
//! order ([`GrowthStrategy::LeafWise`]). Every record-heavy step runs
//! through the [`StepExecutor`] trait, so every mode composes with both
//! [`crate::train::SequentialExec`] and [`crate::parallel::ParallelExec`]
//! (including the previously unreachable parallel level-wise
//! configuration) and with the functional device model in `booster-sim`.
//!
//! Shared machinery — base-score/margin/gradient initialization, the
//! outer tree loop with stochastic row/column sampling (all masks drawn
//! from one seeded [`SampleStream`] owned by the engine, never by an
//! executor), the validation pipeline
//! ([`grow_forest_with_eval`]: per-tree eval scoring through the
//! flat-ensemble [`TreeScorer`] with patience-based early stopping),
//! [`StepTimes`] / [`WorkCounters`] instrumentation, Step-5 traversal,
//! and [`PhaseLog`] emission — lives here once. Phase descriptors keep their
//! mode-specific *memory access patterns*: vertex-wise and leaf-wise log
//! per-vertex sparse gathers, while level-wise logs dense full-dataset
//! streams per level, which is exactly the trade-off the
//! `ablation_growth` harness quantifies on the timing models.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::columnar::ColumnarMirror;
use crate::gradients::{GradPair, Loss};
use crate::histogram::{HistogramPool, NodeHistogram};
use crate::infer::TreeScorer;
use crate::metrics::EvalMetric;
use crate::phases::{
    column_blocks, gh_blocks, row_major_blocks, BinPhase, NodePhase, PartitionPhase, PhaseLog,
    TraversalPhase, TreePhases,
};
use crate::predict::Model;
use crate::preprocess::{BinnedDataset, FieldBinning, BLOCK_BYTES};
use crate::sample::SampleStream;
use crate::split::{find_best_split, leaf_weight, SplitInfo};
use crate::train::{EvalSet, StepExecutor, StepTimes, TrainConfig, TrainReport, WorkCounters};
use crate::tree::{Node, Tree};

/// The order in which frontier vertices are expanded while growing a
/// tree. Orthogonal to the execution backend: every strategy runs its
/// record-heavy steps through a [`StepExecutor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum GrowthStrategy {
    /// Depth-first, one vertex at a time (the paper's evaluated
    /// configuration). Each vertex fetches only its sparse
    /// relevant-record subset.
    #[default]
    VertexWise,
    /// Breadth-first: all valid vertices of a level are explored
    /// together, modeling one dense full-dataset stream per level
    /// (Section II-A's second configuration).
    LevelWise,
    /// Best-first: always expand the frontier leaf with the highest
    /// split gain, stopping once the tree has `max_leaves` leaves
    /// (LightGBM-style growth). `cfg.max_depth` still caps depth.
    LeafWise {
        /// Leaf budget per tree; growth stops when reached. Must be
        /// at least 2 (a budget of 1 never splits the root).
        max_leaves: u32,
    },
}

impl GrowthStrategy {
    /// Short human-readable name (used by benches and reports).
    pub fn name(&self) -> &'static str {
        match self {
            GrowthStrategy::VertexWise => "vertex-wise",
            GrowthStrategy::LevelWise => "level-wise",
            GrowthStrategy::LeafWise { .. } => "leaf-wise",
        }
    }
}

/// Train a model: the single engine behind [`crate::train::train`],
/// [`crate::levelwise::train_levelwise`] and
/// [`crate::parallel::train_parallel`].
///
/// Grows `cfg.num_trees` trees in `cfg.growth` order, executing Steps 1,
/// 3 and 5 on `exec`, and returns the model plus the instrumented
/// report.
///
/// # Panics
/// Panics with a descriptive message if `cfg` fails
/// [`TrainConfig::validate`] or `data` is empty.
pub fn grow_forest(
    data: &BinnedDataset,
    columnar: &ColumnarMirror,
    cfg: &TrainConfig,
    exec: &dyn StepExecutor,
) -> (Model, TrainReport) {
    grow_forest_with_eval(data, columnar, cfg, exec, None)
}

/// Per-run state of the validation pipeline: incremental margins over
/// the held-out set, the metric history, and the best iteration so far.
struct EvalState<'a> {
    data: &'a BinnedDataset,
    metric: EvalMetric,
    min_delta: f64,
    margins: Vec<f64>,
    /// Labels preconverted to `f64` once (they never change per tree).
    labels: Vec<f64>,
    /// Scratch buffer for transformed predictions, reused every tree.
    preds: Vec<f64>,
    history: Vec<f64>,
    /// Tree count of the best model so far (0 until a metric value
    /// improves on [`EvalMetric::worst`]).
    best_iter: usize,
    best_value: f64,
}

impl EvalState<'_> {
    /// Score the newest tree into the margins and update the history and
    /// best-iteration tracking.
    fn score_tree(&mut self, tree: &Tree, binnings: &[FieldBinning], loss: Loss) {
        match TreeScorer::try_new(tree, binnings) {
            Ok(scorer) => scorer.add_margins(self.data, &mut self.margins),
            // Trees beyond the u16 table encoding fall back to the node
            // walk (bit-identical, just slower).
            Err(_) => {
                for (r, m) in self.margins.iter_mut().enumerate() {
                    *m += tree.traverse_binned(self.data, r).0;
                }
            }
        }
        let value = self.metric.compute_reusing(loss, &self.margins, &self.labels, &mut self.preds);
        self.history.push(value);
        if self.metric.improved(value, self.best_value, self.min_delta) {
            self.best_value = value;
            self.best_iter = self.history.len();
        }
    }
}

/// Score the newest tree against the eval set (if any) and report
/// whether the patience budget is exhausted.
fn eval_and_check(
    eval_state: &mut Option<EvalState<'_>>,
    trees: &[Tree],
    cfg: &TrainConfig,
    binnings: &[FieldBinning],
) -> bool {
    let Some(ev) = eval_state.as_mut() else { return false };
    ev.score_tree(trees.last().expect("a tree was just pushed"), binnings, cfg.loss);
    match &cfg.early_stopping {
        Some(es) => trees.len() - ev.best_iter >= es.patience,
        None => false,
    }
}

/// [`grow_forest`] with the validation pipeline attached: after every
/// tree the `eval` set is scored through the flat-ensemble engine
/// ([`TreeScorer`]) and the metric recorded in
/// [`TrainReport::eval_history`]. With
/// [`TrainConfig::early_stopping`] set, training stops once the metric
/// has not improved for `patience` trees and the model is truncated to
/// [`TrainReport::best_iteration`].
///
/// # Panics
/// Additionally panics if `cfg.early_stopping` is set without an eval
/// set, or if the eval set's field arity differs from the training
/// set's.
pub fn grow_forest_with_eval(
    data: &BinnedDataset,
    columnar: &ColumnarMirror,
    cfg: &TrainConfig,
    exec: &dyn StepExecutor,
    eval: Option<&EvalSet<'_>>,
) -> (Model, TrainReport) {
    if let Err(e) = cfg.validate() {
        panic!("invalid TrainConfig: {e}");
    }
    assert!(data.num_records() > 0, "cannot train on an empty dataset");
    assert!(
        cfg.early_stopping.is_none() || eval.is_some(),
        "early_stopping requires an evaluation set (train_with_eval / grow_forest_with_eval)"
    );
    if let Some(ev) = eval {
        assert_eq!(
            ev.data().num_fields(),
            data.num_fields(),
            "eval set schema must match training schema"
        );
    }
    debug_assert!(columnar.is_consistent_with(data), "columnar mirror out of sync");
    let n = data.num_records();
    let labels = data.labels();
    // One seeded stream for every sampling decision, owned here —
    // outside the executor — so sequential and parallel backends draw
    // identical masks (the bit-identity invariant).
    let mut sampler = SampleStream::new(cfg.seed);

    let t_init = Instant::now();
    let label_mean = labels.iter().map(|&y| f64::from(y)).sum::<f64>() / n as f64;
    let base_score = cfg.loss.base_score(label_mean);
    let mut margins = vec![base_score; n];
    let mut grads: Vec<GradPair> = Vec::with_capacity(n);
    let mut loss_sum = 0.0f64;
    for r in 0..n {
        let (gp, lv) = cfg.loss.grad_value(margins[r], f64::from(labels[r]));
        grads.push(gp);
        loss_sum += lv;
    }
    let mut prev_loss = loss_sum / n as f64;

    let mut times = StepTimes { other: t_init.elapsed(), ..Default::default() };
    let mut work = WorkCounters::default();
    let mut tree_logs: Vec<TreePhases> = Vec::new();
    let mut loss_history = Vec::with_capacity(cfg.num_trees);
    let mut trees: Vec<Tree> = Vec::with_capacity(cfg.num_trees);
    let mut eval_state: Option<EvalState<'_>> = eval.map(|ev| {
        let metric = cfg.early_stopping.map(|es| es.metric).unwrap_or_default();
        EvalState {
            data: ev.data(),
            metric,
            min_delta: cfg.early_stopping.map(|es| es.min_delta).unwrap_or(0.0),
            margins: vec![base_score; ev.data().num_records()],
            labels: ev.data().labels().iter().map(|&y| f64::from(y)).collect(),
            preds: Vec::new(),
            history: Vec::new(),
            best_iter: 0,
            best_value: metric.worst(),
        }
    });

    // Histogram allocations are recycled across vertices and trees: the
    // pool's peak size is the widest frontier ever reached, not the
    // vertex count.
    let mut pool = HistogramPool::new();

    for _tree_idx in 0..cfg.num_trees {
        // Stochastic GB: sample the records this tree sees.
        let root_rows = sampler.draw_rows(n, cfg.subsample);
        if root_rows.is_empty() {
            // A pathological subsample of a tiny dataset: skip this tree.
            loss_history.push(prev_loss);
            trees.push(Tree::leaf(0.0));
            if eval_and_check(&mut eval_state, &trees, cfg, data.binnings()) {
                break;
            }
            continue;
        }
        // Column sampling: restrict this tree's candidate fields.
        let field_mask = sampler.draw_field_mask(data.num_fields(), cfg.colsample_bytree);

        // ---- Grow one tree (Steps 1-4) through the shared engine. ----
        let mut grower = TreeGrower {
            data,
            columnar,
            grads: &grads,
            cfg,
            exec,
            field_mask: field_mask.as_deref(),
            sampler: &mut sampler,
            pool: &mut pool,
            nodes: vec![Node::Leaf { weight: 0.0 }],
            phases: Vec::new(),
            frontier: Vec::new(),
            leaves: 1,
            seq: 0,
            dense_scanned_depth: None,
            times: &mut times,
            work: &mut work,
        };
        grower.seed_root(root_rows);
        match cfg.growth {
            GrowthStrategy::VertexWise => grower.grow_depth_first(),
            GrowthStrategy::LevelWise => grower.grow_breadth_first(),
            GrowthStrategy::LeafWise { max_leaves } => grower.grow_best_first(max_leaves),
        }
        let (nodes, phases) = grower.finish();
        let tree = Tree::new(nodes);

        // ---- Step 5: one-tree traversal, gradient + loss update. ----
        let t5 = Instant::now();
        let (sum_path, total_loss) =
            exec.traverse_update(data, &tree, cfg.loss, labels, &mut margins, &mut grads);
        times.step5 += t5.elapsed();
        work.step5_records += n as u64;
        work.step5_lookups += sum_path;

        if cfg.collect_phases {
            tree_logs.push(TreePhases {
                nodes: phases,
                traversal: TraversalPhase {
                    n_records: n,
                    fields_used: tree.fields_used().len(),
                    sum_path_len: sum_path,
                    max_depth: tree.depth(),
                },
            });
        }

        let mean_loss = total_loss / n as f64;
        loss_history.push(mean_loss);
        trees.push(tree);

        // ---- Validation pipeline: score the eval set incrementally. ----
        let patience_exhausted = eval_and_check(&mut eval_state, &trees, cfg, data.binnings());

        if let Some(min_dec) = cfg.min_loss_decrease {
            if prev_loss - mean_loss < min_dec {
                break;
            }
        }
        prev_loss = mean_loss;
        if patience_exhausted {
            break;
        }
    }

    // Record the best iteration and, under early stopping, trim the
    // model back to it (trees are prefix-stable: stopping later never
    // changes earlier trees).
    let (eval_history, best_iteration) = match eval_state {
        Some(ev) => {
            let best = ev.best_iter.max(1);
            if cfg.early_stopping.is_some() {
                trees.truncate(best);
            }
            (Some(ev.history), Some(best))
        }
        None => (None, None),
    };

    let model = Model {
        trees,
        base_score,
        loss: cfg.loss,
        schema: data.schema().clone(),
        binnings: data.binnings().to_vec(),
    };
    let phase_log = cfg.collect_phases.then(|| PhaseLog {
        trees: tree_logs,
        num_records: n,
        num_fields: data.num_fields(),
        record_bytes: data.record_bytes(),
        total_bins: data.total_bins(),
        field_entry_bytes: (0..data.num_fields())
            .map(|f| data.binnings()[f].encoded_bytes())
            .collect(),
        field_bins: (0..data.num_fields()).map(|f| data.field_bins(f)).collect(),
    });
    (model, TrainReport { times, work, phase_log, loss_history, eval_history, best_iteration })
}

/// A split-ready frontier vertex: its relevant records, its histogram,
/// and the best split already found for it (vertices with no valid
/// split never enter the frontier — they are finalized as leaves on
/// admission).
struct Pending {
    node: u32,
    depth: u32,
    rows: Vec<u32>,
    hist: NodeHistogram,
    split: SplitInfo,
    bin: Option<BinPhase>,
    seq: u64,
}

/// Priority-queue key for leaf-wise growth: split gain with total order.
/// Gains returned by `find_best_split` are finite (they exceed the
/// validated-finite `gamma`), so `partial_cmp` cannot fail.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Gain(f64);

impl Eq for Gain {}

impl PartialOrd for Gain {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Gain {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("split gains are finite")
    }
}

/// Per-level accumulator for the level-wise mode's aggregated phase
/// descriptor (one dense stream per level, not per vertex).
#[derive(Default)]
struct LevelAgg {
    partitioned: usize,
    explicit_binned: usize,
    active_splits: usize,
}

/// Growth state for one tree.
struct TreeGrower<'a> {
    data: &'a BinnedDataset,
    columnar: &'a ColumnarMirror,
    grads: &'a [GradPair],
    cfg: &'a TrainConfig,
    exec: &'a dyn StepExecutor,
    /// Column-sampling mask for this tree (stochastic GB).
    field_mask: Option<&'a [bool]>,
    /// The run's sampling stream, for per-node field masks
    /// (`colsample_bynode`). Lives outside the executor so masks are
    /// identical across backends.
    sampler: &'a mut SampleStream,
    /// Recycled histogram allocations (shared across trees).
    pool: &'a mut HistogramPool,
    nodes: Vec<Node>,
    phases: Vec<NodePhase>,
    frontier: Vec<Pending>,
    /// Leaves the tree would have if every frontier vertex stopped now.
    leaves: usize,
    /// Monotone admission counter (deterministic priority tie-break).
    seq: u64,
    /// Level-wise only: depth of the most recent Step-2 scans not yet
    /// covered by a per-level phase descriptor (a level whose vertices
    /// were all scanned but none split still costs host scan time).
    dense_scanned_depth: Option<u32>,
    times: &'a mut StepTimes,
    work: &'a mut WorkCounters,
}

impl TreeGrower<'_> {
    fn collect(&self) -> bool {
        self.cfg.collect_phases
    }

    fn dense(&self) -> bool {
        self.cfg.growth == GrowthStrategy::LevelWise
    }

    /// Dense full-dataset row-stream block count (the level-wise access
    /// pattern).
    fn dense_row_blocks(&self) -> usize {
        (self.data.num_records() * self.data.record_bytes() as usize).div_ceil(BLOCK_BYTES)
    }

    /// Dense full-dataset gradient-pair stream block count.
    fn dense_gh_blocks(&self) -> usize {
        (self.data.num_records() * 8).div_ceil(BLOCK_BYTES)
    }

    /// Step 1 at the root, then admit it to the frontier.
    fn seed_root(&mut self, rows: Vec<u32>) {
        let t1 = Instant::now();
        let mut hist = self.pool.acquire(self.data);
        let updates = self.exec.bin_records(self.data, self.columnar, &rows, self.grads, &mut hist);
        self.times.step1 += t1.elapsed();
        self.work.step1_records += rows.len() as u64;
        self.work.step1_updates += updates;

        let bin = self.collect().then(|| {
            if self.dense() {
                // Level-wise streams the whole dataset to bin the root.
                BinPhase {
                    depth: 0,
                    n_reaching: rows.len(),
                    n_binned: rows.len(),
                    row_blocks: self.dense_row_blocks(),
                    gh_stream_blocks: self.dense_gh_blocks(),
                }
            } else {
                BinPhase {
                    depth: 0,
                    n_reaching: rows.len(),
                    n_binned: rows.len(),
                    row_blocks: row_major_blocks(&rows, self.data.record_bytes()),
                    gh_stream_blocks: gh_blocks(&rows),
                }
            }
        });
        if self.dense() {
            // Level-wise logs the root stream immediately; subsequent
            // levels log one aggregated descriptor each. (Its Step-2
            // scan is accounted with the level scans, hence
            // `scanned: false` here.)
            if let Some(bin) = bin.clone() {
                self.phases.push(NodePhase { bin, scanned: false, partition: None });
            }
        }
        self.admit(0, 0, rows, hist, bin);
    }

    /// Scan a vertex for its best split (Step 2) and either queue it on
    /// the frontier or finalize it as a leaf.
    fn admit(
        &mut self,
        node: u32,
        depth: u32,
        rows: Vec<u32>,
        hist: NodeHistogram,
        bin: Option<BinPhase>,
    ) {
        let scanned = depth < self.cfg.max_depth;
        let split = if scanned {
            // Per-node column sampling: re-draw this vertex's candidate
            // fields from within the tree mask. Drawn only for vertices
            // actually scanned, so the stream advances identically on
            // every backend.
            let node_mask: Option<Vec<bool>> = (self.cfg.colsample_bynode < 1.0).then(|| {
                self.sampler.draw_node_mask(
                    self.data.num_fields(),
                    self.cfg.colsample_bynode,
                    self.field_mask,
                )
            });
            let mask = node_mask.as_deref().or(self.field_mask);
            let t2 = Instant::now();
            let (s, bins) = find_best_split(&hist, self.data.binnings(), &self.cfg.split, mask);
            self.times.step2 += t2.elapsed();
            self.work.step2_scans += 1;
            self.work.step2_bins += bins;
            if self.dense() {
                self.dense_scanned_depth = Some(depth);
            }
            s
        } else {
            None
        };
        match split {
            Some(split) => {
                let seq = self.seq;
                self.seq += 1;
                self.frontier.push(Pending { node, depth, rows, hist, split, bin, seq });
            }
            None => {
                self.finalize_leaf(node, depth, rows.len(), &hist, bin, scanned);
                self.pool.release(hist);
            }
        }
    }

    /// Set a vertex's leaf weight and (in per-vertex modes) log its
    /// phase descriptor.
    fn finalize_leaf(
        &mut self,
        node: u32,
        depth: u32,
        n_reaching: usize,
        hist: &NodeHistogram,
        bin: Option<BinPhase>,
        scanned: bool,
    ) {
        let w = leaf_weight(hist.total(), self.cfg.split.lambda) * self.cfg.learning_rate;
        self.nodes[node as usize] = Node::Leaf { weight: w };
        if self.collect() && !self.dense() {
            self.phases.push(NodePhase {
                bin: bin.unwrap_or_else(|| empty_bin_phase(depth, n_reaching)),
                scanned,
                partition: None,
            });
        }
    }

    /// Expand one frontier vertex: partition its records (Step 3), grow
    /// its two children, bin the smaller child and derive the larger by
    /// subtraction (Step 1), then admit both children.
    fn expand(&mut self, p: Pending, mut level: Option<&mut LevelAgg>) {
        let Pending { node, depth, rows, hist, split, bin, .. } = p;
        let field = split.field as usize;

        // ---- Step 3: partition by the new predicate's single column. ----
        let t3 = Instant::now();
        let column = self.columnar.column(field);
        let absent = self.data.binnings()[field].absent_bin();
        let (lrows, rrows) =
            self.exec.partition(&rows, column, split.rule, split.default_left, absent);
        self.times.step3 += t3.elapsed();
        self.work.step3_records += rows.len() as u64;

        if self.collect() {
            match level.as_deref_mut() {
                Some(agg) => {
                    agg.partitioned += rows.len();
                    agg.active_splits += 1;
                }
                None => {
                    let entry_bytes = self.data.binnings()[field].encoded_bytes();
                    self.phases.push(NodePhase {
                        bin: bin.unwrap_or_else(|| empty_bin_phase(depth, rows.len())),
                        scanned: true,
                        partition: Some(PartitionPhase {
                            n_records: rows.len(),
                            col_blocks: column_blocks(&rows, entry_bytes),
                            row_blocks: row_major_blocks(&rows, self.data.record_bytes()),
                            n_left: lrows.len(),
                            n_right: rrows.len(),
                        }),
                    });
                }
            }
        }
        drop(rows);

        // ---- Materialize the internal node and its children. ----
        let left = self.nodes.len() as u32;
        let right = left + 1;
        self.nodes.push(Node::Leaf { weight: 0.0 });
        self.nodes.push(Node::Leaf { weight: 0.0 });
        self.nodes[node as usize] = Node::Internal {
            field: split.field,
            rule: split.rule,
            default_left: split.default_left,
            left,
            right,
        };
        self.leaves += 1;

        // ---- Step 1 at the children: bin only the smaller child
        // explicitly; derive the larger by subtraction. ----
        let left_smaller = lrows.len() <= rrows.len();
        let (srows, brows) = if left_smaller { (&lrows, &rrows) } else { (&rrows, &lrows) };

        let t1 = Instant::now();
        let mut small_hist = self.pool.acquire(self.data);
        let updates =
            self.exec.bin_records(self.data, self.columnar, srows, self.grads, &mut small_hist);
        let mut big_hist = self.pool.acquire(self.data);
        NodeHistogram::subtract_from_into(&hist, &small_hist, &mut big_hist);
        self.times.step1 += t1.elapsed();
        self.work.step1_records += srows.len() as u64;
        self.work.step1_updates += updates;
        if let Some(agg) = level {
            agg.explicit_binned += srows.len();
        }

        let (small_bin, big_bin) = if self.collect() && !self.dense() {
            (
                Some(BinPhase {
                    depth: depth + 1,
                    n_reaching: srows.len(),
                    n_binned: srows.len(),
                    row_blocks: row_major_blocks(srows, self.data.record_bytes()),
                    gh_stream_blocks: gh_blocks(srows),
                }),
                Some(empty_bin_phase(depth + 1, brows.len())),
            )
        } else {
            (None, None)
        };
        self.pool.release(hist);

        let (lhist, rhist, lbin, rbin) = if left_smaller {
            (small_hist, big_hist, small_bin, big_bin)
        } else {
            (big_hist, small_hist, big_bin, small_bin)
        };
        self.admit(left, depth + 1, lrows, lhist, lbin);
        self.admit(right, depth + 1, rrows, rhist, rbin);
    }

    /// Vertex-wise: depth-first, one vertex at a time (LIFO frontier).
    fn grow_depth_first(&mut self) {
        while let Some(p) = self.frontier.pop() {
            self.expand(p, None);
        }
    }

    /// Level-wise: expand every frontier vertex of the current depth
    /// together, logging one dense-stream phase descriptor per level.
    fn grow_breadth_first(&mut self) {
        while !self.frontier.is_empty() {
            let batch = std::mem::take(&mut self.frontier);
            let depth = batch[0].depth;
            // This batch's descriptor covers the scans of its vertices.
            self.dense_scanned_depth = None;
            let mut agg = LevelAgg::default();
            for p in batch {
                self.expand(p, Some(&mut agg));
            }
            if self.collect() {
                let n = self.data.num_records();
                let binned = agg.explicit_binned;
                self.phases.push(NodePhase {
                    bin: BinPhase {
                        depth: depth + 1,
                        n_reaching: agg.partitioned,
                        n_binned: binned,
                        // Level-wise streams the whole dataset densely.
                        row_blocks: if binned > 0 { self.dense_row_blocks() } else { 0 },
                        gh_stream_blocks: if binned > 0 { self.dense_gh_blocks() } else { 0 },
                    },
                    scanned: true,
                    partition: Some(PartitionPhase {
                        n_records: agg.partitioned,
                        // One dense pass over the predicate columns used
                        // at this level (one column per active split).
                        col_blocks: agg.active_splits * n.div_ceil(BLOCK_BYTES),
                        row_blocks: self.dense_row_blocks(),
                        n_left: agg.partitioned / 2,
                        n_right: agg.partitioned - agg.partitioned / 2,
                    }),
                });
            }
        }
        // A level whose vertices were all scanned but none split never
        // forms a batch; its Step-2 host work still needs a descriptor.
        if let Some(depth) = self.dense_scanned_depth.take() {
            if self.collect() {
                self.phases.push(NodePhase {
                    bin: empty_bin_phase(depth, 0),
                    scanned: true,
                    partition: None,
                });
            }
        }
    }

    /// Leaf-wise: always expand the frontier vertex with the highest
    /// split gain (ties broken by admission order), until the leaf
    /// budget is spent or no vertex can split. The frontier is driven
    /// by a priority queue: O(log L) per expansion instead of a linear
    /// scan.
    fn grow_best_first(&mut self, max_leaves: u32) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        // Heap entries index `slots`; each slot is expanded at most once.
        let mut heap: BinaryHeap<(Gain, Reverse<u64>, usize)> = BinaryHeap::new();
        let mut slots: Vec<Option<Pending>> = Vec::new();
        loop {
            for p in self.frontier.drain(..) {
                heap.push((Gain(p.split.gain), Reverse(p.seq), slots.len()));
                slots.push(Some(p));
            }
            if self.leaves >= max_leaves as usize {
                break;
            }
            let Some((_, _, slot)) = heap.pop() else { break };
            let p = slots[slot].take().expect("each slot is expanded once");
            self.expand(p, None);
        }
        // Unexpanded vertices go back to the frontier (in admission
        // order) for `finish` to finalize as leaves.
        self.frontier = slots.into_iter().flatten().collect();
    }

    /// Finalize any unexpanded frontier vertices (leaf-wise budget
    /// exhaustion) and return the grown tree's nodes and phases.
    fn finish(mut self) -> (Vec<Node>, Vec<NodePhase>) {
        let mut rest = std::mem::take(&mut self.frontier);
        rest.sort_by_key(|p| p.seq);
        for p in rest {
            let Pending { node, depth, rows, hist, bin, .. } = p;
            self.finalize_leaf(node, depth, rows.len(), &hist, bin, true);
            self.pool.release(hist);
        }
        (self.nodes, self.phases)
    }
}

/// Phase entry for a vertex whose histogram came from sibling
/// subtraction: no record traffic.
fn empty_bin_phase(depth: u32, n_reaching: usize) -> BinPhase {
    BinPhase { depth, n_reaching, n_binned: 0, row_blocks: 0, gh_stream_blocks: 0 }
}
