//! The unified tree-growth engine: one loop for every growth order ×
//! execution backend.
//!
//! Section II-A of the paper contrasts two ways of scheduling Steps 1–4
//! of Table I: **vertex-by-vertex** (explore one vertex at a time,
//! fetching each vertex's sparse relevant-record subset) and
//! **level-by-level** (explore all valid vertices of a level together,
//! streaming the whole dataset once per level at unit density). A third
//! order used by LightGBM-style systems — **leaf-wise / best-first**
//! growth, where the frontier leaf with the highest split gain is always
//! expanded next under a leaf budget — dominates the wall-clock
//! comparisons in Anghel et al.'s GBDT benchmarking study
//! (arXiv:1809.04559).
//!
//! All three orders perform the *same* per-vertex work: scan the vertex's
//! histograms for the best split (Step 2), partition its relevant records
//! by the chosen predicate (Step 3), then histogram-bin the smaller child
//! explicitly and derive the larger sibling by subtraction (Step 1, the
//! smaller-child optimization). They differ only in *which* frontier
//! vertex is expanded next. This module therefore implements a single
//! engine: a frontier of split-ready vertices plus a [`GrowthStrategy`]
//! that picks the expansion order — depth-first ([`GrowthStrategy::VertexWise`]),
//! breadth-first ([`GrowthStrategy::LevelWise`]), or a best-first priority
//! order ([`GrowthStrategy::LeafWise`]). Every record-heavy step runs
//! through the [`StepExecutor`] trait, so every mode composes with both
//! [`crate::train::SequentialExec`] and [`crate::parallel::ParallelExec`]
//! (including the previously unreachable parallel level-wise
//! configuration) and with the functional device model in `booster-sim`.
//!
//! Shared machinery — base-score/margin/gradient initialization, the
//! outer tree loop with stochastic row/column sampling (all masks drawn
//! from one seeded [`SampleStream`] owned by the engine, never by an
//! executor), the validation pipeline
//! ([`grow_forest_with_eval`]: per-tree eval scoring through the
//! flat-ensemble [`TreeScorer`] with patience-based early stopping),
//! [`StepTimes`] / [`WorkCounters`] instrumentation, Step-5 traversal,
//! and [`PhaseLog`] emission — lives here once. Phase descriptors keep their
//! mode-specific *memory access patterns*: vertex-wise and leaf-wise log
//! per-vertex sparse gathers, while level-wise logs dense full-dataset
//! streams per level, which is exactly the trade-off the
//! `ablation_growth` harness quantifies on the timing models.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::columnar::ColumnarMirror;
use crate::gradients::{lambdarank_grad_refresh, softmax_grad_refresh, GradPair, Loss, Objective};
use crate::histogram::{HistogramPool, NodeHistogram};
use crate::infer::TreeScorer;
use crate::metrics::{multi_logloss, multiclass_accuracy, ndcg_at_k, EvalMetric};
use crate::phases::{
    column_blocks, gh_blocks, row_major_blocks, BinPhase, NodePhase, PartitionPhase, PhaseLog,
    TraversalPhase, TreePhases,
};
use crate::predict::Model;
use crate::preprocess::{BinnedDataset, FieldBinning, BLOCK_BYTES};
use crate::sample::SampleStream;
use crate::split::{find_best_split, leaf_weight, SplitInfo};
use crate::train::{EvalSet, StepExecutor, StepTimes, TrainConfig, TrainReport, WorkCounters};
use crate::tree::{Node, Tree};

/// The order in which frontier vertices are expanded while growing a
/// tree. Orthogonal to the execution backend: every strategy runs its
/// record-heavy steps through a [`StepExecutor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum GrowthStrategy {
    /// Depth-first, one vertex at a time (the paper's evaluated
    /// configuration). Each vertex fetches only its sparse
    /// relevant-record subset.
    #[default]
    VertexWise,
    /// Breadth-first: all valid vertices of a level are explored
    /// together, modeling one dense full-dataset stream per level
    /// (Section II-A's second configuration).
    LevelWise,
    /// Best-first: always expand the frontier leaf with the highest
    /// split gain, stopping once the tree has `max_leaves` leaves
    /// (LightGBM-style growth). `cfg.max_depth` still caps depth.
    LeafWise {
        /// Leaf budget per tree; growth stops when reached. Must be
        /// at least 2 (a budget of 1 never splits the root).
        max_leaves: u32,
    },
}

impl GrowthStrategy {
    /// Short human-readable name (used by benches and reports).
    pub fn name(&self) -> &'static str {
        match self {
            GrowthStrategy::VertexWise => "vertex-wise",
            GrowthStrategy::LevelWise => "level-wise",
            GrowthStrategy::LeafWise { .. } => "leaf-wise",
        }
    }
}

/// Train a model: the single engine behind [`crate::train::train`],
/// [`crate::levelwise::train_levelwise`] and
/// [`crate::parallel::train_parallel`].
///
/// Grows `cfg.num_trees` trees in `cfg.growth` order, executing Steps 1,
/// 3 and 5 on `exec`, and returns the model plus the instrumented
/// report.
///
/// # Panics
/// Panics with a descriptive message if `cfg` fails
/// [`TrainConfig::validate`] or `data` is empty.
pub fn grow_forest(
    data: &BinnedDataset,
    columnar: &ColumnarMirror,
    cfg: &TrainConfig,
    exec: &dyn StepExecutor,
) -> (Model, TrainReport) {
    grow_forest_with_eval(data, columnar, cfg, exec, None)
}

/// Add one tree's margins over an eval set, through the flat-ensemble
/// [`TreeScorer`] when the tree fits the u16 table encoding, falling
/// back to the node walk otherwise (bit-identical, just slower).
fn add_eval_margins(
    tree: &Tree,
    binnings: &[FieldBinning],
    data: &BinnedDataset,
    margins: &mut [f64],
) {
    match TreeScorer::try_new(tree, binnings) {
        Ok(scorer) => scorer.add_margins(data, margins),
        Err(_) => {
            for (r, m) in margins.iter_mut().enumerate() {
                *m += tree.traverse_binned(data, r).0;
            }
        }
    }
}

/// Per-run state of the validation pipeline: incremental margins over
/// the held-out set, the metric history, and the best iteration so far.
struct EvalState<'a> {
    data: &'a BinnedDataset,
    metric: EvalMetric,
    min_delta: f64,
    /// The scalar loss used by [`EvalMetric::Loss`] and the per-metric
    /// transforms.
    loss: Loss,
    margins: Vec<f64>,
    /// Labels preconverted to `f64` once (they never change per tree).
    labels: Vec<f64>,
    /// Query-group sizes of the eval set, for [`EvalMetric::Ndcg`].
    groups: Option<Vec<u32>>,
    /// Scratch buffer for transformed predictions, reused every tree.
    preds: Vec<f64>,
    history: Vec<f64>,
    /// Tree count of the best model so far (0 until a metric value
    /// improves on [`EvalMetric::worst`]).
    best_iter: usize,
    best_value: f64,
}

impl<'a> EvalState<'a> {
    fn new(ev: &EvalSet<'a>, cfg: &TrainConfig, loss: Loss, base_score: f64) -> Self {
        let metric = cfg.early_stopping.map(|es| es.metric).unwrap_or_default();
        EvalState {
            data: ev.data(),
            metric,
            min_delta: cfg.early_stopping.map(|es| es.min_delta).unwrap_or(0.0),
            loss,
            margins: vec![base_score; ev.data().num_records()],
            labels: ev.data().labels().iter().map(|&y| f64::from(y)).collect(),
            groups: ev.data().query_groups().map(<[u32]>::to_vec),
            preds: Vec::new(),
            history: Vec::new(),
            best_iter: 0,
            best_value: metric.worst(),
        }
    }

    /// Score the newest tree into the margins and update the history and
    /// best-iteration tracking.
    fn score_tree(&mut self, tree: &Tree, binnings: &[FieldBinning]) {
        add_eval_margins(tree, binnings, self.data, &mut self.margins);
        let value = match self.metric {
            // NDCG ranks the eval set by its real query groups when the
            // dataset carries them; a monotone output transform never
            // changes the ranking, so raw margins are scored directly.
            EvalMetric::Ndcg { k } => {
                let whole = [self.margins.len() as u32];
                let groups: &[u32] = self.groups.as_deref().unwrap_or(&whole);
                ndcg_at_k(&self.margins, &self.labels, groups, k as usize)
            }
            _ => {
                self.metric.compute_reusing(self.loss, &self.margins, &self.labels, &mut self.preds)
            }
        };
        self.history.push(value);
        if self.metric.improved(value, self.best_value, self.min_delta) {
            self.best_value = value;
            self.best_iter = self.history.len();
        }
    }
}

/// Score the newest tree against the eval set (if any) and report
/// whether the patience budget is exhausted.
fn eval_and_check(
    eval_state: &mut Option<EvalState<'_>>,
    trees: &[Tree],
    cfg: &TrainConfig,
    binnings: &[FieldBinning],
) -> bool {
    let Some(ev) = eval_state.as_mut() else { return false };
    ev.score_tree(trees.last().expect("a tree was just pushed"), binnings);
    match &cfg.early_stopping {
        Some(es) => trees.len() - ev.best_iter >= es.patience,
        None => false,
    }
}

/// [`grow_forest`] with the validation pipeline attached: after every
/// tree the `eval` set is scored through the flat-ensemble engine
/// ([`TreeScorer`]) and the metric recorded in
/// [`TrainReport::eval_history`]. With
/// [`TrainConfig::early_stopping`] set, training stops once the metric
/// has not improved for `patience` trees and the model is truncated to
/// [`TrainReport::best_iteration`].
///
/// # Panics
/// Additionally panics if `cfg.early_stopping` is set without an eval
/// set, or if the eval set's field arity differs from the training
/// set's.
pub fn grow_forest_with_eval(
    data: &BinnedDataset,
    columnar: &ColumnarMirror,
    cfg: &TrainConfig,
    exec: &dyn StepExecutor,
    eval: Option<&EvalSet<'_>>,
) -> (Model, TrainReport) {
    if let Err(e) = cfg.validate() {
        panic!("invalid TrainConfig: {e}");
    }
    assert!(data.num_records() > 0, "cannot train on an empty dataset");
    assert!(
        cfg.early_stopping.is_none() || eval.is_some(),
        "early_stopping requires an evaluation set (train_with_eval / grow_forest_with_eval)"
    );
    if let Some(ev) = eval {
        assert_eq!(
            ev.data().num_fields(),
            data.num_fields(),
            "eval set schema must match training schema"
        );
    }
    debug_assert!(columnar.is_consistent_with(data), "columnar mirror out of sync");
    // Objectives whose per-record gradients decouple lower to a scalar
    // loss and run the original one-output loop bit-for-bit; the
    // coupled objectives get dedicated loops over the same per-tree
    // engine.
    match cfg.objective.scalar_loss() {
        Some(loss) => grow_scalar(data, columnar, cfg, loss, exec, eval),
        None => match cfg.objective {
            Objective::Softmax { num_class } => {
                grow_softmax(data, columnar, cfg, num_class as usize, exec, eval)
            }
            Objective::LambdaRank => grow_lambdarank(data, columnar, cfg, exec, eval),
            _ => unreachable!("scalar objectives lower to a Loss"),
        },
    }
}

/// The original one-output training loop: margins and gradients are
/// scalar per record, and every boosting round grows exactly one tree.
/// This path is bit-identical to the engine before the multi-output
/// [`Objective`] layer existed.
fn grow_scalar(
    data: &BinnedDataset,
    columnar: &ColumnarMirror,
    cfg: &TrainConfig,
    loss: Loss,
    exec: &dyn StepExecutor,
    eval: Option<&EvalSet<'_>>,
) -> (Model, TrainReport) {
    let n = data.num_records();
    let labels = data.labels();
    // One seeded stream for every sampling decision, owned here —
    // outside the executor — so sequential and parallel backends draw
    // identical masks (the bit-identity invariant).
    let mut sampler = SampleStream::new(cfg.seed);

    let t_init = Instant::now();
    let label_mean = labels.iter().map(|&y| f64::from(y)).sum::<f64>() / n as f64;
    let base_score = loss.base_score(label_mean);
    let mut margins = vec![base_score; n];
    let mut grads: Vec<GradPair> = Vec::with_capacity(n);
    let mut loss_sum = 0.0f64;
    for r in 0..n {
        let (gp, lv) = loss.grad_value(margins[r], f64::from(labels[r]));
        grads.push(gp);
        loss_sum += lv;
    }
    let mut prev_loss = loss_sum / n as f64;

    let init_elapsed = t_init.elapsed();
    crate::telemetry::phase("train_init", t_init, init_elapsed);
    let mut times = StepTimes { other: init_elapsed, ..Default::default() };
    let mut work = WorkCounters::default();
    let mut tree_logs: Vec<TreePhases> = Vec::new();
    let mut loss_history = Vec::with_capacity(cfg.num_trees);
    let mut trees: Vec<Tree> = Vec::with_capacity(cfg.num_trees);
    let mut eval_state: Option<EvalState<'_>> =
        eval.map(|ev| EvalState::new(ev, cfg, loss, base_score));

    // Histogram allocations are recycled across vertices and trees: the
    // pool's peak size is the widest frontier ever reached, not the
    // vertex count.
    let mut pool = HistogramPool::new();

    for _tree_idx in 0..cfg.num_trees {
        // Stochastic GB: sample the records this tree sees.
        let root_rows = sampler.draw_rows(n, cfg.subsample);
        if root_rows.is_empty() {
            // A pathological subsample of a tiny dataset: skip this tree.
            loss_history.push(prev_loss);
            trees.push(Tree::leaf(0.0));
            if eval_and_check(&mut eval_state, &trees, cfg, data.binnings()) {
                break;
            }
            continue;
        }
        // Column sampling: restrict this tree's candidate fields.
        let field_mask = sampler.draw_field_mask(data.num_fields(), cfg.colsample_bytree);

        // ---- Grow one tree (Steps 1-4) through the shared engine. ----
        let (tree, phases) = grow_single_tree(
            data,
            columnar,
            cfg,
            exec,
            &mut sampler,
            &mut pool,
            &grads,
            root_rows,
            field_mask.as_deref(),
            &mut times,
            &mut work,
        );

        // ---- Step 5: one-tree traversal, gradient + loss update. ----
        let t5 = Instant::now();
        let (sum_path, total_loss) =
            exec.traverse_update(data, &tree, loss, labels, &mut margins, &mut grads);
        let el5 = t5.elapsed();
        crate::telemetry::phase("step5_traverse", t5, el5);
        times.step5 += el5;
        work.step5_records += n as u64;
        work.step5_lookups += sum_path;

        if cfg.collect_phases {
            tree_logs.push(TreePhases {
                nodes: phases,
                traversal: TraversalPhase {
                    n_records: n,
                    fields_used: tree.fields_used().len(),
                    sum_path_len: sum_path,
                    max_depth: tree.depth(),
                },
            });
        }

        let mean_loss = total_loss / n as f64;
        loss_history.push(mean_loss);
        trees.push(tree);

        // ---- Validation pipeline: score the eval set incrementally. ----
        let patience_exhausted = eval_and_check(&mut eval_state, &trees, cfg, data.binnings());

        if let Some(min_dec) = cfg.min_loss_decrease {
            if prev_loss - mean_loss < min_dec {
                break;
            }
        }
        prev_loss = mean_loss;
        if patience_exhausted {
            break;
        }
    }

    // Record the best iteration and, under early stopping, trim the
    // model back to it (trees are prefix-stable: stopping later never
    // changes earlier trees).
    let (eval_history, best_iteration) = match eval_state {
        Some(ev) => {
            let best = ev.best_iter.max(1);
            if cfg.early_stopping.is_some() {
                trees.truncate(best);
            }
            (Some(ev.history), Some(best))
        }
        None => (None, None),
    };

    let model = Model {
        trees,
        base_score,
        objective: cfg.objective,
        num_outputs: 1,
        schema: data.schema().clone(),
        binnings: data.binnings().to_vec(),
    };
    let phase_log = cfg.collect_phases.then(|| PhaseLog {
        trees: tree_logs,
        num_records: n,
        num_fields: data.num_fields(),
        record_bytes: data.record_bytes(),
        total_bins: data.total_bins(),
        field_entry_bytes: (0..data.num_fields())
            .map(|f| data.binnings()[f].encoded_bytes())
            .collect(),
        field_bins: (0..data.num_fields()).map(|f| data.field_bins(f)).collect(),
    });
    crate::telemetry::train_finished(&times, &work);
    (model, TrainReport { times, work, phase_log, loss_history, eval_history, best_iteration })
}

/// Grow one tree (Steps 1-4) from a per-record gradient slice through
/// the shared frontier engine. The caller owns the sampling stream and
/// has already drawn this tree's root rows and field mask, so the
/// stream order — and with it bit-identity across backends — is fixed
/// by the caller's loop, not by this helper.
#[allow(clippy::too_many_arguments)]
fn grow_single_tree(
    data: &BinnedDataset,
    columnar: &ColumnarMirror,
    cfg: &TrainConfig,
    exec: &dyn StepExecutor,
    sampler: &mut SampleStream,
    pool: &mut HistogramPool,
    grads: &[GradPair],
    root_rows: Vec<u32>,
    field_mask: Option<&[bool]>,
    times: &mut StepTimes,
    work: &mut WorkCounters,
) -> (Tree, Vec<NodePhase>) {
    let mut grower = TreeGrower {
        data,
        columnar,
        grads,
        cfg,
        exec,
        field_mask,
        sampler,
        pool,
        nodes: vec![Node::Leaf { weight: 0.0 }],
        phases: Vec::new(),
        frontier: Vec::new(),
        leaves: 1,
        seq: 0,
        dense_scanned_depth: None,
        times,
        work,
    };
    grower.seed_root(root_rows);
    match cfg.growth {
        GrowthStrategy::VertexWise => grower.grow_depth_first(),
        GrowthStrategy::LevelWise => grower.grow_breadth_first(),
        GrowthStrategy::LeafWise { max_leaves } => grower.grow_best_first(max_leaves),
    }
    let (nodes, phases) = grower.finish();
    (Tree::new(nodes), phases)
}

/// Validation state for softmax training: a row-major `n x k` margin
/// matrix over the eval set, scored once per boosting round.
struct MultiEvalState<'a> {
    data: &'a BinnedDataset,
    metric: EvalMetric,
    min_delta: f64,
    k: usize,
    /// Row-major `n_eval x k`.
    margins: Vec<f64>,
    labels: Vec<f64>,
    /// Per-class scratch the [`TreeScorer`] accumulates into before the
    /// strided add into the margin matrix.
    scratch: Vec<f64>,
    history: Vec<f64>,
    /// Round count of the best model so far.
    best_round: usize,
    best_value: f64,
}

impl<'a> MultiEvalState<'a> {
    fn new(ev: &EvalSet<'a>, cfg: &TrainConfig, k: usize) -> Self {
        let metric = cfg.early_stopping.map(|es| es.metric).unwrap_or_default();
        MultiEvalState {
            data: ev.data(),
            metric,
            min_delta: cfg.early_stopping.map(|es| es.min_delta).unwrap_or(0.0),
            k,
            margins: vec![0.0; ev.data().num_records() * k],
            labels: ev.data().labels().iter().map(|&y| f64::from(y)).collect(),
            scratch: Vec::new(),
            history: Vec::new(),
            best_round: 0,
            best_value: metric.worst(),
        }
    }

    /// Accumulate one class tree's margins into column `class` of the
    /// eval margin matrix.
    fn add_tree(&mut self, tree: &Tree, binnings: &[FieldBinning], class: usize) {
        let n = self.labels.len();
        self.scratch.clear();
        self.scratch.resize(n, 0.0);
        add_eval_margins(tree, binnings, self.data, &mut self.scratch);
        for (r, &w) in self.scratch.iter().enumerate() {
            self.margins[r * self.k + class] += w;
        }
    }

    /// Score the completed round's full output vector and update the
    /// history and best-round tracking.
    fn score_round(&mut self) {
        let value = match self.metric {
            EvalMetric::Loss | EvalMetric::MultiLogloss => {
                multi_logloss(&self.margins, &self.labels, self.k)
            }
            EvalMetric::Accuracy => multiclass_accuracy(&self.margins, &self.labels, self.k),
            m => panic!("eval metric {} is not defined for softmax models", m.name()),
        };
        self.history.push(value);
        if self.metric.improved(value, self.best_value, self.min_delta) {
            self.best_value = value;
            self.best_round = self.history.len();
        }
    }
}

/// The softmax multiclass training loop: every boosting round grows K
/// trees (one per class, round-major) against a row-major `n x k`
/// gradient matrix refreshed once per round — each class tree of a
/// round sees the margins as they stood when the round started, the
/// standard per-class-tree semantics of multiclass GBDT.
fn grow_softmax(
    data: &BinnedDataset,
    columnar: &ColumnarMirror,
    cfg: &TrainConfig,
    k: usize,
    exec: &dyn StepExecutor,
    eval: Option<&EvalSet<'_>>,
) -> (Model, TrainReport) {
    let n = data.num_records();
    let labels = data.labels();
    let mut sampler = SampleStream::new(cfg.seed);

    let t_init = Instant::now();
    // Multiclass margins start at zero for every class; the label
    // distribution is learned by the first round's trees.
    let base_score = 0.0;
    let mut margins = vec![0.0f64; n * k];
    let mut grads = vec![GradPair::zero(); n * k];
    let mut prev_loss = softmax_grad_refresh(&margins, labels, k, &mut grads);

    let init_elapsed = t_init.elapsed();
    crate::telemetry::phase("train_init", t_init, init_elapsed);
    let mut times = StepTimes { other: init_elapsed, ..Default::default() };
    let mut work = WorkCounters::default();
    let mut tree_logs: Vec<TreePhases> = Vec::new();
    let mut loss_history = Vec::with_capacity(cfg.num_trees);
    let mut trees: Vec<Tree> = Vec::with_capacity(cfg.num_trees * k);
    let mut eval_state: Option<MultiEvalState<'_>> = eval.map(|ev| MultiEvalState::new(ev, cfg, k));
    let mut pool = HistogramPool::new();
    let mut class_grads: Vec<GradPair> = Vec::with_capacity(n);

    for _round in 0..cfg.num_trees {
        for class in 0..k {
            // Stochastic GB: each class tree draws its own row sample
            // and field mask, advancing the one stream deterministically.
            let root_rows = sampler.draw_rows(n, cfg.subsample);
            if root_rows.is_empty() {
                // A pathological subsample of a tiny dataset: a weight-0
                // leaf keeps the round-major layout intact.
                trees.push(Tree::leaf(0.0));
                continue;
            }
            let field_mask = sampler.draw_field_mask(data.num_fields(), cfg.colsample_bytree);

            // Gather this class's gradient column contiguously so the
            // engine's kernels stream it like a scalar run.
            class_grads.clear();
            class_grads.extend((0..n).map(|r| grads[r * k + class]));
            let (tree, phases) = grow_single_tree(
                data,
                columnar,
                cfg,
                exec,
                &mut sampler,
                &mut pool,
                &class_grads,
                root_rows,
                field_mask.as_deref(),
                &mut times,
                &mut work,
            );

            // ---- Step 5: update this class's margin column. Gradients
            // refresh at the round boundary, not here. ----
            let t5 = Instant::now();
            let mut sum_path = 0u64;
            for r in 0..n {
                let (w, path) = tree.traverse_binned(data, r);
                margins[r * k + class] += w;
                sum_path += u64::from(path);
            }
            let el5 = t5.elapsed();
            crate::telemetry::phase("step5_traverse", t5, el5);
            times.step5 += el5;
            work.step5_records += n as u64;
            work.step5_lookups += sum_path;

            if cfg.collect_phases {
                tree_logs.push(TreePhases {
                    nodes: phases,
                    traversal: TraversalPhase {
                        n_records: n,
                        fields_used: tree.fields_used().len(),
                        sum_path_len: sum_path,
                        max_depth: tree.depth(),
                    },
                });
            }
            if let Some(ev) = eval_state.as_mut() {
                ev.add_tree(&tree, data.binnings(), class);
            }
            trees.push(tree);
        }

        // ---- Round boundary: refresh the full gradient matrix and
        // record the training loss after this round's K trees. ----
        let t5 = Instant::now();
        let mean_loss = softmax_grad_refresh(&margins, labels, k, &mut grads);
        let el5 = t5.elapsed();
        crate::telemetry::phase("step5_refresh", t5, el5);
        times.step5 += el5;
        loss_history.push(mean_loss);

        let patience_exhausted = match eval_state.as_mut() {
            Some(ev) => {
                ev.score_round();
                match &cfg.early_stopping {
                    Some(es) => loss_history.len() - ev.best_round >= es.patience,
                    None => false,
                }
            }
            None => false,
        };
        if let Some(min_dec) = cfg.min_loss_decrease {
            if prev_loss - mean_loss < min_dec {
                break;
            }
        }
        prev_loss = mean_loss;
        if patience_exhausted {
            break;
        }
    }

    // Early stopping truncates at a round boundary: the best round's
    // model keeps exactly `best_round * k` round-major trees.
    let (eval_history, best_iteration) = match eval_state {
        Some(ev) => {
            let best_round = ev.best_round.max(1);
            if cfg.early_stopping.is_some() {
                trees.truncate(best_round * k);
            }
            (Some(ev.history), Some(best_round * k))
        }
        None => (None, None),
    };

    let model = Model {
        trees,
        base_score,
        objective: cfg.objective,
        num_outputs: k as u32,
        schema: data.schema().clone(),
        binnings: data.binnings().to_vec(),
    };
    let phase_log = cfg.collect_phases.then(|| PhaseLog {
        trees: tree_logs,
        num_records: n,
        num_fields: data.num_fields(),
        record_bytes: data.record_bytes(),
        total_bins: data.total_bins(),
        field_entry_bytes: (0..data.num_fields())
            .map(|f| data.binnings()[f].encoded_bytes())
            .collect(),
        field_bins: (0..data.num_fields()).map(|f| data.field_bins(f)).collect(),
    });
    crate::telemetry::train_finished(&times, &work);
    (model, TrainReport { times, work, phase_log, loss_history, eval_history, best_iteration })
}

/// The LambdaRank training loop: one output, but gradients couple all
/// records of a query group — every boosting round recomputes pairwise
/// λ-gradients from the current margins before growing its tree.
fn grow_lambdarank(
    data: &BinnedDataset,
    columnar: &ColumnarMirror,
    cfg: &TrainConfig,
    exec: &dyn StepExecutor,
    eval: Option<&EvalSet<'_>>,
) -> (Model, TrainReport) {
    let n = data.num_records();
    let labels = data.labels();
    let groups: Vec<u32> = data
        .query_groups()
        .expect(
            "LambdaRank requires query groups on the training set \
             (BinnedDataset::set_query_groups)",
        )
        .to_vec();
    let mut sampler = SampleStream::new(cfg.seed);

    let t_init = Instant::now();
    // Ranking scores are relative; start every document at zero.
    let base_score = 0.0;
    let mut margins = vec![0.0f64; n];
    let mut grads = vec![GradPair::zero(); n];
    let mut prev_loss = lambdarank_grad_refresh(&margins, labels, &groups, &mut grads);

    let init_elapsed = t_init.elapsed();
    crate::telemetry::phase("train_init", t_init, init_elapsed);
    let mut times = StepTimes { other: init_elapsed, ..Default::default() };
    let mut work = WorkCounters::default();
    let mut tree_logs: Vec<TreePhases> = Vec::new();
    let mut loss_history = Vec::with_capacity(cfg.num_trees);
    let mut trees: Vec<Tree> = Vec::with_capacity(cfg.num_trees);
    let mut eval_state: Option<RankEvalState<'_>> = eval.map(|ev| RankEvalState::new(ev, cfg));
    let mut pool = HistogramPool::new();

    for _round in 0..cfg.num_trees {
        let root_rows = sampler.draw_rows(n, cfg.subsample);
        if root_rows.is_empty() {
            loss_history.push(prev_loss);
            trees.push(Tree::leaf(0.0));
            if rank_eval_and_check(&mut eval_state, &trees, cfg, data.binnings()) {
                break;
            }
            continue;
        }
        let field_mask = sampler.draw_field_mask(data.num_fields(), cfg.colsample_bytree);
        let (tree, phases) = grow_single_tree(
            data,
            columnar,
            cfg,
            exec,
            &mut sampler,
            &mut pool,
            &grads,
            root_rows,
            field_mask.as_deref(),
            &mut times,
            &mut work,
        );

        // ---- Step 5: margin update, then the per-group λ-gradient
        // refresh against the new ranking. ----
        let t5 = Instant::now();
        let mut sum_path = 0u64;
        for (r, m) in margins.iter_mut().enumerate() {
            let (w, path) = tree.traverse_binned(data, r);
            *m += w;
            sum_path += u64::from(path);
        }
        let mean_loss = lambdarank_grad_refresh(&margins, labels, &groups, &mut grads);
        let el5 = t5.elapsed();
        crate::telemetry::phase("step5_refresh", t5, el5);
        times.step5 += el5;
        work.step5_records += n as u64;
        work.step5_lookups += sum_path;

        if cfg.collect_phases {
            tree_logs.push(TreePhases {
                nodes: phases,
                traversal: TraversalPhase {
                    n_records: n,
                    fields_used: tree.fields_used().len(),
                    sum_path_len: sum_path,
                    max_depth: tree.depth(),
                },
            });
        }
        loss_history.push(mean_loss);
        trees.push(tree);

        let patience_exhausted = rank_eval_and_check(&mut eval_state, &trees, cfg, data.binnings());
        if let Some(min_dec) = cfg.min_loss_decrease {
            if prev_loss - mean_loss < min_dec {
                break;
            }
        }
        prev_loss = mean_loss;
        if patience_exhausted {
            break;
        }
    }

    let (eval_history, best_iteration) = match eval_state {
        Some(ev) => {
            let best = ev.best_iter.max(1);
            if cfg.early_stopping.is_some() {
                trees.truncate(best);
            }
            (Some(ev.history), Some(best))
        }
        None => (None, None),
    };

    let model = Model {
        trees,
        base_score,
        objective: cfg.objective,
        num_outputs: 1,
        schema: data.schema().clone(),
        binnings: data.binnings().to_vec(),
    };
    let phase_log = cfg.collect_phases.then(|| PhaseLog {
        trees: tree_logs,
        num_records: n,
        num_fields: data.num_fields(),
        record_bytes: data.record_bytes(),
        total_bins: data.total_bins(),
        field_entry_bytes: (0..data.num_fields())
            .map(|f| data.binnings()[f].encoded_bytes())
            .collect(),
        field_bins: (0..data.num_fields()).map(|f| data.field_bins(f)).collect(),
    });
    crate::telemetry::train_finished(&times, &work);
    (model, TrainReport { times, work, phase_log, loss_history, eval_history, best_iteration })
}

/// Validation state for LambdaRank: scalar margins scored by NDCG over
/// the eval set's query groups (or the |ΔNDCG|-weighted surrogate loss
/// for [`EvalMetric::Loss`]).
struct RankEvalState<'a> {
    data: &'a BinnedDataset,
    metric: EvalMetric,
    min_delta: f64,
    margins: Vec<f64>,
    labels: Vec<f64>,
    groups: Vec<u32>,
    /// Scratch gradient pairs for the surrogate-loss evaluation.
    grads_scratch: Vec<GradPair>,
    history: Vec<f64>,
    best_iter: usize,
    best_value: f64,
}

impl<'a> RankEvalState<'a> {
    fn new(ev: &EvalSet<'a>, cfg: &TrainConfig) -> Self {
        let metric = cfg.early_stopping.map(|es| es.metric).unwrap_or_default();
        let n = ev.data().num_records();
        // An eval set without groups ranks as one whole-set query.
        let groups =
            ev.data().query_groups().map(<[u32]>::to_vec).unwrap_or_else(|| vec![n as u32]);
        RankEvalState {
            data: ev.data(),
            metric,
            min_delta: cfg.early_stopping.map(|es| es.min_delta).unwrap_or(0.0),
            margins: vec![0.0; n],
            labels: ev.data().labels().iter().map(|&y| f64::from(y)).collect(),
            groups,
            grads_scratch: vec![GradPair::zero(); n],
            history: Vec::new(),
            best_iter: 0,
            best_value: metric.worst(),
        }
    }

    fn score_tree(&mut self, tree: &Tree, binnings: &[FieldBinning]) {
        add_eval_margins(tree, binnings, self.data, &mut self.margins);
        let value = match self.metric {
            EvalMetric::Ndcg { k } => {
                ndcg_at_k(&self.margins, &self.labels, &self.groups, k as usize)
            }
            EvalMetric::Loss => lambdarank_grad_refresh(
                &self.margins,
                self.data.labels(),
                &self.groups,
                &mut self.grads_scratch,
            ),
            m => panic!("eval metric {} is not defined for LambdaRank models", m.name()),
        };
        self.history.push(value);
        if self.metric.improved(value, self.best_value, self.min_delta) {
            self.best_value = value;
            self.best_iter = self.history.len();
        }
    }
}

/// [`RankEvalState`] analogue of `eval_and_check`.
fn rank_eval_and_check(
    eval_state: &mut Option<RankEvalState<'_>>,
    trees: &[Tree],
    cfg: &TrainConfig,
    binnings: &[FieldBinning],
) -> bool {
    let Some(ev) = eval_state.as_mut() else { return false };
    ev.score_tree(trees.last().expect("a tree was just pushed"), binnings);
    match &cfg.early_stopping {
        Some(es) => trees.len() - ev.best_iter >= es.patience,
        None => false,
    }
}

/// A split-ready frontier vertex: its relevant records, its histogram,
/// and the best split already found for it (vertices with no valid
/// split never enter the frontier — they are finalized as leaves on
/// admission).
struct Pending {
    node: u32,
    depth: u32,
    rows: Vec<u32>,
    hist: NodeHistogram,
    split: SplitInfo,
    bin: Option<BinPhase>,
    seq: u64,
}

/// Priority-queue key for leaf-wise growth: split gain with total order.
/// Gains returned by `find_best_split` are finite (they exceed the
/// validated-finite `gamma`), so `partial_cmp` cannot fail.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Gain(f64);

impl Eq for Gain {}

impl PartialOrd for Gain {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Gain {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("split gains are finite")
    }
}

/// Per-level accumulator for the level-wise mode's aggregated phase
/// descriptor (one dense stream per level, not per vertex).
#[derive(Default)]
struct LevelAgg {
    partitioned: usize,
    explicit_binned: usize,
    active_splits: usize,
}

/// Growth state for one tree.
struct TreeGrower<'a> {
    data: &'a BinnedDataset,
    columnar: &'a ColumnarMirror,
    grads: &'a [GradPair],
    cfg: &'a TrainConfig,
    exec: &'a dyn StepExecutor,
    /// Column-sampling mask for this tree (stochastic GB).
    field_mask: Option<&'a [bool]>,
    /// The run's sampling stream, for per-node field masks
    /// (`colsample_bynode`). Lives outside the executor so masks are
    /// identical across backends.
    sampler: &'a mut SampleStream,
    /// Recycled histogram allocations (shared across trees).
    pool: &'a mut HistogramPool,
    nodes: Vec<Node>,
    phases: Vec<NodePhase>,
    frontier: Vec<Pending>,
    /// Leaves the tree would have if every frontier vertex stopped now.
    leaves: usize,
    /// Monotone admission counter (deterministic priority tie-break).
    seq: u64,
    /// Level-wise only: depth of the most recent Step-2 scans not yet
    /// covered by a per-level phase descriptor (a level whose vertices
    /// were all scanned but none split still costs host scan time).
    dense_scanned_depth: Option<u32>,
    times: &'a mut StepTimes,
    work: &'a mut WorkCounters,
}

impl TreeGrower<'_> {
    fn collect(&self) -> bool {
        self.cfg.collect_phases
    }

    fn dense(&self) -> bool {
        self.cfg.growth == GrowthStrategy::LevelWise
    }

    /// Dense full-dataset row-stream block count (the level-wise access
    /// pattern).
    fn dense_row_blocks(&self) -> usize {
        (self.data.num_records() * self.data.record_bytes() as usize).div_ceil(BLOCK_BYTES)
    }

    /// Dense full-dataset gradient-pair stream block count.
    fn dense_gh_blocks(&self) -> usize {
        (self.data.num_records() * 8).div_ceil(BLOCK_BYTES)
    }

    /// Step 1 at the root, then admit it to the frontier.
    fn seed_root(&mut self, rows: Vec<u32>) {
        let t1 = Instant::now();
        let mut hist = self.pool.acquire(self.data);
        let updates = self.exec.bin_records(self.data, self.columnar, &rows, self.grads, &mut hist);
        let el1 = t1.elapsed();
        crate::telemetry::phase("step1_build_hist", t1, el1);
        self.times.step1 += el1;
        self.work.step1_records += rows.len() as u64;
        self.work.step1_updates += updates;

        let bin = self.collect().then(|| {
            if self.dense() {
                // Level-wise streams the whole dataset to bin the root.
                BinPhase {
                    depth: 0,
                    n_reaching: rows.len(),
                    n_binned: rows.len(),
                    row_blocks: self.dense_row_blocks(),
                    gh_stream_blocks: self.dense_gh_blocks(),
                }
            } else {
                BinPhase {
                    depth: 0,
                    n_reaching: rows.len(),
                    n_binned: rows.len(),
                    row_blocks: row_major_blocks(&rows, self.data.record_bytes()),
                    gh_stream_blocks: gh_blocks(&rows),
                }
            }
        });
        if self.dense() {
            // Level-wise logs the root stream immediately; subsequent
            // levels log one aggregated descriptor each. (Its Step-2
            // scan is accounted with the level scans, hence
            // `scanned: false` here.)
            if let Some(bin) = bin.clone() {
                self.phases.push(NodePhase { bin, scanned: false, partition: None });
            }
        }
        self.admit(0, 0, rows, hist, bin);
    }

    /// Scan a vertex for its best split (Step 2) and either queue it on
    /// the frontier or finalize it as a leaf.
    fn admit(
        &mut self,
        node: u32,
        depth: u32,
        rows: Vec<u32>,
        hist: NodeHistogram,
        bin: Option<BinPhase>,
    ) {
        let scanned = depth < self.cfg.max_depth;
        let split = if scanned {
            // Per-node column sampling: re-draw this vertex's candidate
            // fields from within the tree mask. Drawn only for vertices
            // actually scanned, so the stream advances identically on
            // every backend.
            let node_mask: Option<Vec<bool>> = (self.cfg.colsample_bynode < 1.0).then(|| {
                self.sampler.draw_node_mask(
                    self.data.num_fields(),
                    self.cfg.colsample_bynode,
                    self.field_mask,
                )
            });
            let mask = node_mask.as_deref().or(self.field_mask);
            let t2 = Instant::now();
            let (s, bins) = find_best_split(&hist, self.data.binnings(), &self.cfg.split, mask);
            let el2 = t2.elapsed();
            crate::telemetry::phase("step2_split_scan", t2, el2);
            self.times.step2 += el2;
            self.work.step2_scans += 1;
            self.work.step2_bins += bins;
            if self.dense() {
                self.dense_scanned_depth = Some(depth);
            }
            s
        } else {
            None
        };
        match split {
            Some(split) => {
                let seq = self.seq;
                self.seq += 1;
                self.frontier.push(Pending { node, depth, rows, hist, split, bin, seq });
            }
            None => {
                self.finalize_leaf(node, depth, rows.len(), &hist, bin, scanned);
                self.pool.release(hist);
            }
        }
    }

    /// Set a vertex's leaf weight and (in per-vertex modes) log its
    /// phase descriptor.
    fn finalize_leaf(
        &mut self,
        node: u32,
        depth: u32,
        n_reaching: usize,
        hist: &NodeHistogram,
        bin: Option<BinPhase>,
        scanned: bool,
    ) {
        let w = leaf_weight(hist.total(), self.cfg.split.lambda) * self.cfg.learning_rate;
        self.nodes[node as usize] = Node::Leaf { weight: w };
        if self.collect() && !self.dense() {
            self.phases.push(NodePhase {
                bin: bin.unwrap_or_else(|| empty_bin_phase(depth, n_reaching)),
                scanned,
                partition: None,
            });
        }
    }

    /// Expand one frontier vertex: partition its records (Step 3), grow
    /// its two children, bin the smaller child and derive the larger by
    /// subtraction (Step 1), then admit both children.
    fn expand(&mut self, p: Pending, mut level: Option<&mut LevelAgg>) {
        let Pending { node, depth, rows, hist, split, bin, .. } = p;
        let field = split.field as usize;

        // ---- Step 3: partition by the new predicate's single column. ----
        let t3 = Instant::now();
        let column = self.columnar.column(field);
        let absent = self.data.binnings()[field].absent_bin();
        let (lrows, rrows) =
            self.exec.partition(&rows, column, field, split.rule, split.default_left, absent);
        let el3 = t3.elapsed();
        crate::telemetry::phase("step3_partition", t3, el3);
        self.times.step3 += el3;
        self.work.step3_records += rows.len() as u64;

        if self.collect() {
            match level.as_deref_mut() {
                Some(agg) => {
                    agg.partitioned += rows.len();
                    agg.active_splits += 1;
                }
                None => {
                    let entry_bytes = self.data.binnings()[field].encoded_bytes();
                    self.phases.push(NodePhase {
                        bin: bin.unwrap_or_else(|| empty_bin_phase(depth, rows.len())),
                        scanned: true,
                        partition: Some(PartitionPhase {
                            n_records: rows.len(),
                            col_blocks: column_blocks(&rows, entry_bytes),
                            row_blocks: row_major_blocks(&rows, self.data.record_bytes()),
                            n_left: lrows.len(),
                            n_right: rrows.len(),
                        }),
                    });
                }
            }
        }
        drop(rows);

        // ---- Materialize the internal node and its children. ----
        let left = self.nodes.len() as u32;
        let right = left + 1;
        self.nodes.push(Node::Leaf { weight: 0.0 });
        self.nodes.push(Node::Leaf { weight: 0.0 });
        self.nodes[node as usize] = Node::Internal {
            field: split.field,
            rule: split.rule,
            default_left: split.default_left,
            left,
            right,
        };
        self.leaves += 1;

        // ---- Step 1 at the children: bin only the smaller child
        // explicitly; derive the larger by subtraction. ----
        let left_smaller = lrows.len() <= rrows.len();
        let (srows, brows) = if left_smaller { (&lrows, &rrows) } else { (&rrows, &lrows) };

        let t1 = Instant::now();
        let mut small_hist = self.pool.acquire(self.data);
        let updates =
            self.exec.bin_records(self.data, self.columnar, srows, self.grads, &mut small_hist);
        let mut big_hist = self.pool.acquire(self.data);
        NodeHistogram::subtract_from_into(&hist, &small_hist, &mut big_hist);
        let el1 = t1.elapsed();
        crate::telemetry::phase("step1_build_hist", t1, el1);
        self.times.step1 += el1;
        self.work.step1_records += srows.len() as u64;
        self.work.step1_updates += updates;
        if let Some(agg) = level {
            agg.explicit_binned += srows.len();
        }

        let (small_bin, big_bin) = if self.collect() && !self.dense() {
            (
                Some(BinPhase {
                    depth: depth + 1,
                    n_reaching: srows.len(),
                    n_binned: srows.len(),
                    row_blocks: row_major_blocks(srows, self.data.record_bytes()),
                    gh_stream_blocks: gh_blocks(srows),
                }),
                Some(empty_bin_phase(depth + 1, brows.len())),
            )
        } else {
            (None, None)
        };
        self.pool.release(hist);

        let (lhist, rhist, lbin, rbin) = if left_smaller {
            (small_hist, big_hist, small_bin, big_bin)
        } else {
            (big_hist, small_hist, big_bin, small_bin)
        };
        self.admit(left, depth + 1, lrows, lhist, lbin);
        self.admit(right, depth + 1, rrows, rhist, rbin);
    }

    /// Vertex-wise: depth-first, one vertex at a time (LIFO frontier).
    fn grow_depth_first(&mut self) {
        while let Some(p) = self.frontier.pop() {
            self.expand(p, None);
        }
    }

    /// Level-wise: expand every frontier vertex of the current depth
    /// together, logging one dense-stream phase descriptor per level.
    fn grow_breadth_first(&mut self) {
        while !self.frontier.is_empty() {
            let batch = std::mem::take(&mut self.frontier);
            let depth = batch[0].depth;
            // This batch's descriptor covers the scans of its vertices.
            self.dense_scanned_depth = None;
            let mut agg = LevelAgg::default();
            for p in batch {
                self.expand(p, Some(&mut agg));
            }
            if self.collect() {
                let n = self.data.num_records();
                let binned = agg.explicit_binned;
                self.phases.push(NodePhase {
                    bin: BinPhase {
                        depth: depth + 1,
                        n_reaching: agg.partitioned,
                        n_binned: binned,
                        // Level-wise streams the whole dataset densely.
                        row_blocks: if binned > 0 { self.dense_row_blocks() } else { 0 },
                        gh_stream_blocks: if binned > 0 { self.dense_gh_blocks() } else { 0 },
                    },
                    scanned: true,
                    partition: Some(PartitionPhase {
                        n_records: agg.partitioned,
                        // One dense pass over the predicate columns used
                        // at this level (one column per active split).
                        col_blocks: agg.active_splits * n.div_ceil(BLOCK_BYTES),
                        row_blocks: self.dense_row_blocks(),
                        n_left: agg.partitioned / 2,
                        n_right: agg.partitioned - agg.partitioned / 2,
                    }),
                });
            }
        }
        // A level whose vertices were all scanned but none split never
        // forms a batch; its Step-2 host work still needs a descriptor.
        if let Some(depth) = self.dense_scanned_depth.take() {
            if self.collect() {
                self.phases.push(NodePhase {
                    bin: empty_bin_phase(depth, 0),
                    scanned: true,
                    partition: None,
                });
            }
        }
    }

    /// Leaf-wise: always expand the frontier vertex with the highest
    /// split gain (ties broken by admission order), until the leaf
    /// budget is spent or no vertex can split. The frontier is driven
    /// by a priority queue: O(log L) per expansion instead of a linear
    /// scan.
    fn grow_best_first(&mut self, max_leaves: u32) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        // Heap entries index `slots`; each slot is expanded at most once.
        let mut heap: BinaryHeap<(Gain, Reverse<u64>, usize)> = BinaryHeap::new();
        let mut slots: Vec<Option<Pending>> = Vec::new();
        loop {
            for p in self.frontier.drain(..) {
                heap.push((Gain(p.split.gain), Reverse(p.seq), slots.len()));
                slots.push(Some(p));
            }
            if self.leaves >= max_leaves as usize {
                break;
            }
            let Some((_, _, slot)) = heap.pop() else { break };
            let p = slots[slot].take().expect("each slot is expanded once");
            self.expand(p, None);
        }
        // Unexpanded vertices go back to the frontier (in admission
        // order) for `finish` to finalize as leaves.
        self.frontier = slots.into_iter().flatten().collect();
    }

    /// Finalize any unexpanded frontier vertices (leaf-wise budget
    /// exhaustion) and return the grown tree's nodes and phases.
    fn finish(mut self) -> (Vec<Node>, Vec<NodePhase>) {
        let mut rest = std::mem::take(&mut self.frontier);
        rest.sort_by_key(|p| p.seq);
        for p in rest {
            let Pending { node, depth, rows, hist, bin, .. } = p;
            self.finalize_leaf(node, depth, rows.len(), &hist, bin, true);
            self.pool.release(hist);
        }
        (self.nodes, self.phases)
    }
}

/// Phase entry for a vertex whose histogram came from sibling
/// subtraction: no record traffic.
fn empty_bin_phase(depth: u32, n_reaching: usize) -> BinPhase {
    BinPhase { depth, n_reaching, n_binned: 0, row_blocks: 0, gh_stream_blocks: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, RawValue};
    use crate::schema::{DatasetSchema, FieldSchema};
    use crate::train::{train, EarlyStopping, SequentialExec};

    /// Three separable classes on two numeric features: class = label
    /// index, feature 0 clusters at 10·class, feature 1 adds a
    /// deterministic wobble so trees have something to split beyond the
    /// first cut.
    fn multiclass_dataset(n: usize) -> BinnedDataset {
        let schema = DatasetSchema::new(vec![
            FieldSchema::numeric_with_bins("x", 32),
            FieldSchema::numeric_with_bins("y", 32),
        ]);
        let mut ds = Dataset::new(schema);
        for i in 0..n {
            let class = i % 3;
            let x = 10.0 * class as f32 + ((i * 7) % 5) as f32;
            let y = ((i * 13) % 11) as f32 + class as f32;
            ds.push_record(&[RawValue::Num(x), RawValue::Num(y)], class as f32);
        }
        BinnedDataset::from_dataset(&ds)
    }

    /// Query-grouped ranking data: 12 docs per query, relevance follows
    /// the first feature with a per-query offset the model must ignore.
    fn ranking_dataset(queries: usize) -> BinnedDataset {
        let schema = DatasetSchema::new(vec![
            FieldSchema::numeric_with_bins("rel_signal", 32),
            FieldSchema::numeric_with_bins("noise", 32),
        ]);
        let mut ds = Dataset::new(schema);
        let mut groups = Vec::with_capacity(queries);
        for q in 0..queries {
            let docs = 12usize;
            groups.push(docs as u32);
            for d in 0..docs {
                let rel = (d % 4) as f32; // grades 0..=3 present per query
                let signal = rel * 2.0 + ((q * 31 + d * 17) % 7) as f32 * 0.1;
                let noise = ((q * 13 + d * 5) % 23) as f32;
                ds.push_record(&[RawValue::Num(signal), RawValue::Num(noise)], rel);
            }
        }
        let mut binned = BinnedDataset::from_dataset(&ds);
        binned.set_query_groups(groups);
        binned
    }

    #[test]
    fn softmax_training_lays_trees_round_major_and_learns_the_classes() {
        let data = multiclass_dataset(300);
        let mirror = ColumnarMirror::from_binned(&data);
        let cfg = TrainConfig {
            num_trees: 8,
            max_depth: 3,
            objective: Objective::Softmax { num_class: 3 },
            ..Default::default()
        };
        let (model, report) = train(&data, &mirror, &cfg);
        assert_eq!(model.num_outputs, 3);
        assert_eq!(model.trees.len(), 8 * 3, "K trees per round, round-major");
        // Multiclass logloss decreases across rounds.
        let first = report.loss_history.first().copied().unwrap();
        let last = report.loss_history.last().copied().unwrap();
        assert!(last < first, "softmax loss did not improve: {first} -> {last}");
        // The model separates the classes far better than chance.
        let labels: Vec<f64> = data.labels().iter().map(|&y| f64::from(y)).collect();
        let margins = model.predict_batch_outputs(&data);
        let acc = multiclass_accuracy(&margins, &labels, 3);
        assert!(acc > 0.9, "train accuracy {acc} too low for separable blobs");
    }

    #[test]
    fn softmax_early_stopping_truncates_at_a_round_boundary() {
        let train_data = multiclass_dataset(240);
        let eval_data = multiclass_dataset(90);
        let mirror = ColumnarMirror::from_binned(&train_data);
        let cfg = TrainConfig {
            num_trees: 20,
            max_depth: 3,
            objective: Objective::Softmax { num_class: 3 },
            early_stopping: Some(EarlyStopping {
                metric: EvalMetric::MultiLogloss,
                patience: 3,
                min_delta: 0.0,
            }),
            ..Default::default()
        };
        let eval = EvalSet::new(&eval_data);
        let (model, report) =
            grow_forest_with_eval(&train_data, &mirror, &cfg, &SequentialExec, Some(&eval));
        let best = report.best_iteration.expect("eval pipeline ran");
        assert_eq!(model.trees.len(), best, "model truncated to the best round");
        assert_eq!(model.trees.len() % 3, 0, "truncation must land on a K-tree round boundary");
        assert!(
            report.eval_history.as_ref().is_some_and(|h| !h.is_empty()),
            "eval history recorded per round"
        );
        // Accuracy is also a valid softmax early-stopping metric.
        let cfg_acc = TrainConfig {
            early_stopping: Some(EarlyStopping {
                metric: EvalMetric::Accuracy,
                patience: 3,
                min_delta: 0.0,
            }),
            ..cfg
        };
        let (model_acc, _) =
            grow_forest_with_eval(&train_data, &mirror, &cfg_acc, &SequentialExec, Some(&eval));
        assert_eq!(model_acc.trees.len() % 3, 0);
    }

    #[test]
    fn lambdarank_training_improves_ndcg_over_the_untrained_ranking() {
        let data = ranking_dataset(25);
        let mirror = ColumnarMirror::from_binned(&data);
        let cfg = TrainConfig {
            num_trees: 12,
            max_depth: 3,
            objective: Objective::LambdaRank,
            ..Default::default()
        };
        let (model, report) = train(&data, &mirror, &cfg);
        assert_eq!(model.num_outputs, 1);
        let labels: Vec<f64> = data.labels().iter().map(|&y| f64::from(y)).collect();
        let groups = data.query_groups().unwrap();
        let flat_margins = vec![0.0f64; data.num_records()];
        let base_ndcg = ndcg_at_k(&flat_margins, &labels, groups, 5);
        let margins: Vec<f64> =
            (0..data.num_records()).map(|r| model.margin_binned(&data, r)).collect();
        let trained_ndcg = ndcg_at_k(&margins, &labels, groups, 5);
        assert!(
            trained_ndcg > base_ndcg + 0.05,
            "NDCG@5 did not improve: {base_ndcg} -> {trained_ndcg}"
        );
        // The pairwise surrogate loss decreases too.
        let first = report.loss_history.first().copied().unwrap();
        let last = report.loss_history.last().copied().unwrap();
        assert!(last < first, "λ-gradient surrogate did not improve: {first} -> {last}");
    }

    #[test]
    fn lambdarank_early_stops_on_eval_ndcg() {
        let train_data = ranking_dataset(20);
        let eval_data = ranking_dataset(8);
        let mirror = ColumnarMirror::from_binned(&train_data);
        let cfg = TrainConfig {
            num_trees: 30,
            max_depth: 3,
            objective: Objective::LambdaRank,
            early_stopping: Some(EarlyStopping {
                metric: EvalMetric::Ndcg { k: 5 },
                patience: 3,
                min_delta: 0.0,
            }),
            ..Default::default()
        };
        let eval = EvalSet::new(&eval_data);
        let (model, report) =
            grow_forest_with_eval(&train_data, &mirror, &cfg, &SequentialExec, Some(&eval));
        let best = report.best_iteration.expect("eval pipeline ran");
        assert_eq!(model.trees.len(), best);
        assert!(best <= 30);
    }

    #[test]
    #[should_panic(expected = "query groups")]
    fn lambdarank_requires_query_groups() {
        let data = multiclass_dataset(60);
        let mirror = ColumnarMirror::from_binned(&data);
        let cfg =
            TrainConfig { num_trees: 2, objective: Objective::LambdaRank, ..Default::default() };
        let _ = train(&data, &mirror, &cfg);
    }

    #[test]
    fn quantile_objective_trains_through_the_scalar_path() {
        // Heavy right tail: the 0.9-quantile model must sit above the
        // median model on the training distribution.
        let schema = DatasetSchema::new(vec![FieldSchema::numeric_with_bins("x", 32)]);
        let mut ds = Dataset::new(schema);
        for i in 0..400 {
            let x = (i % 20) as f32;
            let tail = if i % 10 == 0 { 25.0 } else { 0.0 };
            ds.push_record(&[RawValue::Num(x)], x * 0.5 + tail);
        }
        let data = BinnedDataset::from_dataset(&ds);
        let mirror = ColumnarMirror::from_binned(&data);
        let mean_pred = |alpha: f64| {
            let cfg = TrainConfig {
                num_trees: 10,
                max_depth: 3,
                objective: Objective::PinballQuantile { alpha },
                ..Default::default()
            };
            let (model, _) = train(&data, &mirror, &cfg);
            assert_eq!(model.num_outputs, 1);
            let preds = model.predict_batch(&data);
            preds.iter().sum::<f64>() / preds.len() as f64
        };
        let median = mean_pred(0.5);
        let upper = mean_pred(0.9);
        assert!(upper > median, "0.9-quantile ({upper}) must exceed the median fit ({median})");
    }
}
