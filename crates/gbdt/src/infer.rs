//! Flat-ensemble batch inference engine (Section III-D, Fig 13).
//!
//! [`crate::predict::Model`] walks per-record over `Vec<Node>` trees —
//! pointer-chasing through wide enum nodes with a dynamic absent-bin
//! callback per step, re-touching every tree's nodes for every record.
//! Booster's batch-inference engine instead streams records through
//! SRAM-resident flat tree tables. This module is the software analogue:
//! [`FlatEnsemble`] lowers the *whole* model into one contiguous
//! structure-of-arrays — every tree's 16-byte [`TableEntry`] row
//! concatenated behind per-tree offsets, alongside the renumbered-field
//! gather lists ([`TreeTable::fields_used`], the per-tree fetch pattern
//! a BU performs) and exact `f64` leaf weights — and scores a
//! [`BinnedDataset`] in cache-sized record blocks: a block's rows are
//! brought into cache once, then **all** trees walk the block while each
//! tree's contiguous entries stay hot.
//!
//! Two lowering choices make the CPU walk fast and exact:
//!
//! * the gather lists are pre-resolved into per-entry original-field and
//!   absent-bin arrays, so a walk step is straight-line loads (entry,
//!   field id, absent bin, record bin) with no renumbering indirection
//!   and no virtual dispatch;
//! * leaf weights are kept in a parallel `f64` array (the 16-byte
//!   entries store the on-chip `f32`), and per-record accumulation
//!   always folds tree weights in tree order — so every execution mode
//!   is **bit-identical** to [`Model::predict_batch`], enforced across
//!   all growth strategies by `tests/property_tests.rs`.
//!
//! Three execution modes mirror the parallelism structure of the
//! accelerator ([`ExecMode`]): sequential blocked, record-parallel
//! (blocks fan out across cores, as records fan out across ensemble
//! replicas), and tree-parallel (trees fan out, as trees fan out across
//! BUs). [`Predictor`] wraps the same engine for serving-style
//! raw-record scoring with reusable buffers and absent bins precomputed
//! once.

use std::sync::OnceLock;

use rayon::prelude::*;

use crate::compile::{compile, CompileOptions, CompiledEnsemble};
use crate::dataset::RawValue;
use crate::gradients::Objective;
use crate::predict::Model;
use crate::preprocess::{BinnedDataset, FieldBinning};
use crate::split::{goes_left, SplitRule};
use crate::tree::{Node, TableEntry, TableLoweringError, Tree, TreeTable, TABLE_ENTRY_BYTES};

/// Records per scoring block: with tens of 4-byte bins per record, a
/// block's rows and the current tree's table fit comfortably in L1/L2
/// while the block is walked by every tree.
const BLOCK_RECORDS: usize = 256;

/// Records per tree-parallel outer block: larger, so the per-block
/// thread fan-out over trees is amortized.
const TREE_PARALLEL_BLOCK: usize = 8192;

/// How a [`FlatEnsemble`] batch call executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One thread, blocked over records (trees inner): the cache-blocked
    /// baseline.
    Sequential,
    /// Record blocks fan out across cores (rayon) — the analogue of
    /// streaming record shards through ensemble replicas.
    RecordParallel,
    /// Trees fan out across cores per record block — the analogue of one
    /// BU per tree; per-record sums still fold in tree order.
    TreeParallel,
    /// The ensemble is lowered once (lazily, then cached) to a
    /// partitioned branch-free bytecode program and interpreted in
    /// lockstep record lanes ([`crate::compile`]) — the analogue of the
    /// accelerator's fixed-function walk. Single-threaded, like
    /// `Sequential`.
    Compiled,
}

/// A whole trained model lowered into one contiguous flat form.
///
/// Built from per-tree [`TreeTable`]s; construction fails (rather than
/// corrupting child pointers) if any tree exceeds the `u16` index space
/// — see [`TableLoweringError`].
///
/// # Thread safety
///
/// A `FlatEnsemble` is immutable after construction — every scoring
/// entry point takes `&self` and touches only caller-owned buffers — so
/// it is `Send + Sync` (enforced by a compile-time assertion below) and
/// one instance behind an `Arc` can be scored from any number of
/// threads concurrently with no locking.
#[derive(Debug, Clone)]
pub struct FlatEnsemble {
    /// All trees' 16-byte table entries, concatenated.
    entries: Vec<TableEntry>,
    /// Exact `f64` leaf weight per entry (internal entries hold 0); kept
    /// alongside the `f32` on-chip encoding so batch results match
    /// [`Model::predict_batch`] bit-for-bit.
    weights: Vec<f64>,
    /// Original field tested by each entry, pre-resolved from the
    /// renumbered gather list (leaves hold 0, never read).
    entry_fields: Vec<u32>,
    /// Absent bin of each entry's field, pre-resolved likewise.
    entry_absents: Vec<u32>,
    /// `entries[tree_offsets[t]..tree_offsets[t + 1]]` is tree `t`.
    tree_offsets: Vec<usize>,
    /// All trees' renumbered-field gather lists, concatenated: original
    /// field id per `(tree, renumbered index)` slot — the per-tree
    /// single-field-column fetch pattern of the accelerator.
    gather_fields: Vec<u32>,
    /// Absent bin of each gathered slot, precomputed from the model's
    /// binnings.
    gather_absents: Vec<u32>,
    /// `gather_fields[gather_offsets[t]..gather_offsets[t + 1]]` is tree
    /// `t`'s gather list.
    gather_offsets: Vec<usize>,
    /// Field arity the ensemble expects of every record.
    num_fields: usize,
    /// Initial margin added to every prediction.
    base_score: f64,
    /// Training objective; its link function is applied at the
    /// prediction surface.
    objective: Objective,
    /// Outputs per record (`K`); tree `t` accumulates into output
    /// `t % K`. 1 for every scalar objective.
    num_outputs: usize,
    /// Lazily compiled bytecode program ([`ExecMode::Compiled`]);
    /// `OnceLock` keeps the ensemble `Send + Sync` and the compile a
    /// once-per-ensemble cost shared by every later call.
    compiled: OnceLock<CompiledEnsemble>,
}

/// Append one tree's per-entry resolved arrays — exact `f64` leaf
/// weight, original field id, and that field's absent bin (leaves hold
/// 0/0, never read) — the straight-line-load layout both the whole-model
/// lowering ([`FlatEnsemble::from_model`]) and the single-tree scorer
/// ([`TreeScorer`]) walk with.
fn resolve_tree_entries(
    tree: &Tree,
    binnings: &[FieldBinning],
    weights: &mut Vec<f64>,
    fields: &mut Vec<u32>,
    absents: &mut Vec<u32>,
) {
    for node in tree.nodes() {
        match node {
            Node::Leaf { weight } => {
                weights.push(*weight);
                fields.push(0);
                absents.push(0);
            }
            Node::Internal { field, .. } => {
                weights.push(0.0);
                fields.push(*field);
                absents.push(binnings[*field as usize].absent_bin());
            }
        }
    }
}

/// Walk one tree for a record presented as a full per-field bin row
/// (indexed by original field id); returns `(leaf entry index, path
/// length in edges)`. `fields`/`absents` are the tree's per-entry
/// resolved arrays. Generic over the row's bin lookup so packed (`u8`)
/// and wide (`u32`) layouts both walk monomorphized.
#[inline]
fn walk_row(
    entries: &[TableEntry],
    fields: &[u32],
    absents: &[u32],
    bin_at: impl Fn(usize) -> u32,
) -> (usize, u32) {
    let mut idx = 0usize;
    let mut path = 0u32;
    loop {
        let e = &entries[idx];
        if e.kind == 2 {
            return (idx, path);
        }
        let rule = if e.kind == 0 {
            SplitRule::Numeric { threshold_bin: e.threshold }
        } else {
            SplitRule::Categorical { category: e.threshold }
        };
        let bin = bin_at(fields[idx] as usize);
        let left = goes_left(rule, e.default_left, bin, absents[idx]);
        idx = if left { e.left as usize } else { e.right as usize };
        path += 1;
    }
}

/// Walk one tree for a record held in a [`RowRef`](crate::preprocess::RowRef):
/// dispatches the layout once, then runs the monomorphized walk.
#[inline]
fn walk_row_ref(
    entries: &[TableEntry],
    fields: &[u32],
    absents: &[u32],
    row: crate::preprocess::RowRef<'_>,
) -> (usize, u32) {
    match row {
        crate::preprocess::RowRef::Packed(r) => {
            walk_row(entries, fields, absents, |f| u32::from(r[f]))
        }
        crate::preprocess::RowRef::Wide(r) => walk_row(entries, fields, absents, |f| r[f]),
    }
}

impl FlatEnsemble {
    /// Lower a trained model into flat form.
    ///
    /// # Errors
    /// Returns the first tree's [`TableLoweringError`] if any tree is
    /// too large for the 16-byte entry encoding.
    pub fn from_model(model: &Model) -> Result<Self, TableLoweringError> {
        let mut entries = Vec::new();
        let mut weights = Vec::new();
        let mut entry_fields = Vec::new();
        let mut entry_absents = Vec::new();
        let mut tree_offsets = Vec::with_capacity(model.trees.len() + 1);
        tree_offsets.push(0);
        let mut gather_fields = Vec::new();
        let mut gather_absents = Vec::new();
        let mut gather_offsets = Vec::with_capacity(model.trees.len() + 1);
        gather_offsets.push(0);
        for tree in &model.trees {
            let table = TreeTable::try_from_tree(tree)?;
            resolve_tree_entries(
                tree,
                &model.binnings,
                &mut weights,
                &mut entry_fields,
                &mut entry_absents,
            );
            gather_absents
                .extend(table.fields_used.iter().map(|&f| model.binnings[f as usize].absent_bin()));
            gather_fields.extend_from_slice(&table.fields_used);
            entries.extend_from_slice(&table.entries);
            tree_offsets.push(entries.len());
            gather_offsets.push(gather_fields.len());
        }
        Ok(FlatEnsemble {
            entries,
            weights,
            entry_fields,
            entry_absents,
            tree_offsets,
            gather_fields,
            gather_absents,
            gather_offsets,
            num_fields: model.binnings.len(),
            base_score: model.base_score,
            objective: model.objective,
            num_outputs: model.num_outputs as usize,
            compiled: OnceLock::new(),
        })
    }

    /// Tree `t`'s raw lowered parts — `(entries, fields, absents,
    /// weights)` — the compiler's input view of the SoA.
    pub(crate) fn tree_parts(&self, t: usize) -> (&[TableEntry], &[u32], &[u32], &[f64]) {
        let span = self.tree_offsets[t]..self.tree_offsets[t + 1];
        (
            &self.entries[span.clone()],
            &self.entry_fields[span.clone()],
            &self.entry_absents[span.clone()],
            &self.weights[span],
        )
    }

    /// The ensemble compiled to its branch-free bytecode program
    /// (default [`CompileOptions`]), built on first use and cached —
    /// [`ExecMode::Compiled`], `Predictor`, and the serve workers all
    /// share this one program. For non-default options (truncation,
    /// cluster sizing) call [`crate::compile::compile`] directly.
    pub fn compiled(&self) -> &CompiledEnsemble {
        self.compiled.get_or_init(|| {
            compile(self, &CompileOptions::default())
                .expect("ensemble exceeds the u32 instruction space of the program format")
        })
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.tree_offsets.len() - 1
    }

    /// Total table entries across trees.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// On-chip footprint of all tree tables in bytes.
    pub fn byte_size(&self) -> usize {
        self.entries.len() * TABLE_ENTRY_BYTES
    }

    /// Initial margin added to every prediction.
    pub fn base_score(&self) -> f64 {
        self.base_score
    }

    /// Training objective; its link function is applied to summed
    /// margins at every prediction surface.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Outputs per record (`K`); 1 for every scalar objective.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    #[inline]
    fn expect_scalar(&self) {
        assert_eq!(
            self.num_outputs, 1,
            "scalar scoring on a multi-output ensemble; use the *_outputs APIs"
        );
    }

    /// Field arity the ensemble expects of every record.
    pub fn num_fields(&self) -> usize {
        self.num_fields
    }

    /// Tree `t`'s renumbered-field gather list: the original field ids,
    /// in renumbered order, whose single-field columns a BU fetches for
    /// this tree (Section III-B).
    pub fn gather_list(&self, t: usize) -> &[u32] {
        &self.gather_fields[self.gather_offsets[t]..self.gather_offsets[t + 1]]
    }

    /// Absent bin per slot of [`FlatEnsemble::gather_list`], precomputed
    /// from the model's binnings.
    pub fn gather_absents(&self, t: usize) -> &[u32] {
        &self.gather_absents[self.gather_offsets[t]..self.gather_offsets[t + 1]]
    }

    fn check_arity(&self, data: &BinnedDataset) {
        assert_eq!(
            data.num_fields(),
            self.num_fields,
            "dataset field arity does not match the lowered model"
        );
    }

    /// Walk tree `t` over records `r0..r1` and report `(block-local
    /// index, f64 leaf weight, path length)` per record.
    fn walk_tree_block<F>(&self, t: usize, data: &BinnedDataset, r0: usize, r1: usize, mut visit: F)
    where
        F: FnMut(usize, f64, u32),
    {
        let entries = &self.entries[self.tree_offsets[t]..self.tree_offsets[t + 1]];
        let weights = &self.weights[self.tree_offsets[t]..self.tree_offsets[t + 1]];
        let fields = &self.entry_fields[self.tree_offsets[t]..self.tree_offsets[t + 1]];
        let absents = &self.entry_absents[self.tree_offsets[t]..self.tree_offsets[t + 1]];
        for r in r0..r1 {
            let (leaf, path) = walk_row_ref(entries, fields, absents, data.row(r));
            visit(r - r0, weights[leaf], path);
        }
    }

    /// Accumulate every tree's leaf weights (and optionally path
    /// lengths) for one record block. `margins` must be pre-seeded with
    /// the base score.
    fn score_block(
        &self,
        data: &BinnedDataset,
        r0: usize,
        r1: usize,
        margins: &mut [f64],
        mut paths: Option<&mut [u64]>,
    ) {
        for t in 0..self.num_trees() {
            match paths.as_deref_mut() {
                Some(p) => self.walk_tree_block(t, data, r0, r1, |i, w, len| {
                    margins[i] += w;
                    p[i] += u64::from(len);
                }),
                None => self.walk_tree_block(t, data, r0, r1, |i, w, _| margins[i] += w),
            }
        }
    }

    /// Batch prediction over a binned dataset.
    ///
    /// All modes return bit-identical results to
    /// [`Model::predict_batch`]; the dataset must be binned with the
    /// model's own binnings (the same precondition `Model`'s binned
    /// entry points carry).
    pub fn predict_batch(&self, data: &BinnedDataset, mode: ExecMode) -> Vec<f64> {
        let mut out = vec![0.0; data.num_records()];
        self.score_into(data, mode, &mut out);
        out
    }

    /// Score a binned dataset into a caller-provided buffer —
    /// [`FlatEnsemble::predict_batch`] without the output allocation, so
    /// serving workers can reuse one scratch buffer across batches.
    ///
    /// `out` is fully overwritten (its prior contents are ignored) and
    /// must hold exactly one slot per record. `Sequential`,
    /// `RecordParallel`, and `Compiled` perform **no heap allocation**
    /// (after `Compiled`'s one-time lazy program build); `TreeParallel`
    /// allocates per-tree scratch for its fan-out (use it for large
    /// offline batches, not latency-sensitive serving). Results are
    /// bit-identical to [`Model::predict_batch`] in every mode.
    ///
    /// # Panics
    /// Panics if `out.len() != data.num_records()` or on a field-arity
    /// mismatch.
    pub fn score_into(&self, data: &BinnedDataset, mode: ExecMode, out: &mut [f64]) {
        self.expect_scalar();
        self.check_arity(data);
        assert_eq!(out.len(), data.num_records(), "output buffer must cover every record");
        match mode {
            ExecMode::Sequential => {
                out.fill(self.base_score);
                for (b, chunk) in out.chunks_mut(BLOCK_RECORDS).enumerate() {
                    let r0 = b * BLOCK_RECORDS;
                    self.score_block(data, r0, r0 + chunk.len(), chunk, None);
                    for m in chunk.iter_mut() {
                        *m = self.objective.transform(*m);
                    }
                }
            }
            ExecMode::RecordParallel => {
                out.fill(self.base_score);
                out.par_chunks_mut(BLOCK_RECORDS)
                    .enumerate()
                    .map(|(b, chunk)| {
                        let r0 = b * BLOCK_RECORDS;
                        self.score_block(data, r0, r0 + chunk.len(), chunk, None);
                        for m in chunk.iter_mut() {
                            *m = self.objective.transform(*m);
                        }
                    })
                    .for_each();
            }
            ExecMode::TreeParallel => self.tree_parallel_into(data, out),
            ExecMode::Compiled => self.compiled().score_into(data, out),
        }
    }

    /// Score records presented as a raw row-major bin matrix
    /// (`bins[r * num_fields + f]`, one bin index per field per record)
    /// into a caller-provided buffer — the allocation-free entry point
    /// online serving uses for coalesced micro-batches that never
    /// materialize a [`BinnedDataset`]. Sequential cache-blocked
    /// execution, bit-identical to [`Model::predict_batch`] over the
    /// same rows.
    ///
    /// # Panics
    /// Panics if `bins.len() != out.len() * num_fields`.
    pub fn score_bins_into(&self, bins: &[u32], out: &mut [f64]) {
        self.expect_scalar();
        let nf = self.num_fields;
        assert_eq!(bins.len(), out.len() * nf, "bin matrix shape must be records x fields");
        for (b, chunk) in out.chunks_mut(BLOCK_RECORDS).enumerate() {
            let r0 = b * BLOCK_RECORDS;
            chunk.fill(self.base_score);
            for t in 0..self.num_trees() {
                let span = self.tree_offsets[t]..self.tree_offsets[t + 1];
                let entries = &self.entries[span.clone()];
                let fields = &self.entry_fields[span.clone()];
                let absents = &self.entry_absents[span.clone()];
                let weights = &self.weights[span];
                for (i, m) in chunk.iter_mut().enumerate() {
                    let r = r0 + i;
                    let row = &bins[r * nf..(r + 1) * nf];
                    let (leaf, _) = walk_row(entries, fields, absents, |f| row[f]);
                    *m += weights[leaf];
                }
            }
            for m in chunk.iter_mut() {
                *m = self.objective.transform(*m);
            }
        }
    }

    /// Tree-parallel execution: per outer block, every tree walks the
    /// block on its own core into a per-tree weight buffer, then the
    /// combine folds those weights **in tree order** — the same addition
    /// sequence as sequential execution, hence bit-identical.
    fn tree_parallel_into(&self, data: &BinnedDataset, out: &mut [f64]) {
        let n = data.num_records();
        out.fill(self.base_score);
        let mut r0 = 0;
        while r0 < n {
            let r1 = (r0 + TREE_PARALLEL_BLOCK).min(n);
            let per_tree: Vec<Vec<f64>> = (0..self.num_trees())
                .into_par_iter()
                .map(|t| {
                    let mut w = vec![0.0f64; r1 - r0];
                    self.walk_tree_block(t, data, r0, r1, |i, wt, _| w[i] = wt);
                    w
                })
                .collect();
            for tw in &per_tree {
                for (m, &w) in out[r0..r1].iter_mut().zip(tw) {
                    *m += w;
                }
            }
            r0 = r1;
        }
        for m in out.iter_mut() {
            *m = self.objective.transform(*m);
        }
    }

    /// Batch prediction returning per-record total path length across
    /// all trees (the SRAM-lookup count batch inference performs per
    /// record) — the flat-engine replacement for
    /// [`Model::predict_batch_with_paths`], with identical output.
    pub fn predict_batch_with_paths(&self, data: &BinnedDataset) -> (Vec<f64>, Vec<u64>) {
        self.expect_scalar();
        self.check_arity(data);
        let n = data.num_records();
        let mut margins = vec![self.base_score; n];
        let mut paths = vec![0u64; n];
        let mut r0 = 0;
        while r0 < n {
            let r1 = (r0 + BLOCK_RECORDS).min(n);
            self.score_block(data, r0, r1, &mut margins[r0..r1], Some(&mut paths[r0..r1]));
            r0 = r1;
        }
        (margins.into_iter().map(|m| self.objective.transform(m)).collect(), paths)
    }

    /// Multi-output batch prediction: one row-major `K`-slot row per
    /// record (`out[r * K + c]`), with the objective's link function
    /// applied per row. Tree `t` accumulates into output `t % K`, in
    /// tree order — for `K = 1` this is exactly the `Sequential` scalar
    /// path. Single-threaded cache-blocked execution.
    ///
    /// # Panics
    /// Panics if `out.len() != num_records * num_outputs` or on a
    /// field-arity mismatch.
    pub fn score_outputs_into(&self, data: &BinnedDataset, out: &mut [f64]) {
        self.check_arity(data);
        let k = self.num_outputs;
        let n = data.num_records();
        assert_eq!(out.len(), n * k, "output buffer must hold num_outputs slots per record");
        out.fill(self.base_score);
        let mut r0 = 0;
        while r0 < n {
            let r1 = (r0 + BLOCK_RECORDS).min(n);
            for t in 0..self.num_trees() {
                let c = t % k;
                self.walk_tree_block(t, data, r0, r1, |i, w, _| out[(r0 + i) * k + c] += w);
            }
            r0 = r1;
        }
        for row in out.chunks_mut(k) {
            self.objective.transform_outputs(row);
        }
    }

    /// [`FlatEnsemble::score_outputs_into`] with an owned result.
    pub fn predict_batch_outputs(&self, data: &BinnedDataset) -> Vec<f64> {
        let mut out = vec![0.0; data.num_records() * self.num_outputs];
        self.score_outputs_into(data, &mut out);
        out
    }

    /// Multi-output twin of [`FlatEnsemble::score_bins_into`]: score a
    /// raw row-major bin matrix into `records x K` transformed outputs,
    /// with no heap allocation — the serving entry point for
    /// multi-output models (and bit-identical to the scalar path's
    /// margins when `K = 1`).
    ///
    /// # Panics
    /// Panics if the matrix and output shapes disagree.
    pub fn score_bins_outputs_into(&self, bins: &[u32], out: &mut [f64]) {
        let nf = self.num_fields;
        let k = self.num_outputs;
        assert_eq!(bins.len() % nf, 0, "bin matrix shape must be records x fields");
        let n = bins.len() / nf;
        assert_eq!(out.len(), n * k, "output buffer must hold num_outputs slots per record");
        out.fill(self.base_score);
        for t in 0..self.num_trees() {
            let span = self.tree_offsets[t]..self.tree_offsets[t + 1];
            let entries = &self.entries[span.clone()];
            let fields = &self.entry_fields[span.clone()];
            let absents = &self.entry_absents[span.clone()];
            let weights = &self.weights[span];
            let c = t % k;
            for r in 0..n {
                let row = &bins[r * nf..(r + 1) * nf];
                let (leaf, _) = walk_row(entries, fields, absents, |f| row[f]);
                out[r * k + c] += weights[leaf];
            }
        }
        for row in out.chunks_mut(k) {
            self.objective.transform_outputs(row);
        }
    }

    /// Raw margin for one record presented as per-field bins (indexed by
    /// original field id).
    fn margin_of_row(&self, row: &[u32]) -> f64 {
        let mut m = self.base_score;
        for t in 0..self.num_trees() {
            let span = self.tree_offsets[t]..self.tree_offsets[t + 1];
            let (leaf, _) = walk_row(
                &self.entries[span.clone()],
                &self.entry_fields[span.clone()],
                &self.entry_absents[span.clone()],
                |f| row[f],
            );
            m += self.weights[span][leaf];
        }
        m
    }

    /// Raw margin vector for one record presented as per-field bins:
    /// `out` (length `K`) is seeded with the base score and tree `t`
    /// accumulates into slot `t % K`. No link function applied.
    fn margins_of_row_outputs(&self, row: &[u32], out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.num_outputs);
        out.fill(self.base_score);
        let k = self.num_outputs;
        for t in 0..self.num_trees() {
            let span = self.tree_offsets[t]..self.tree_offsets[t + 1];
            let (leaf, _) = walk_row(
                &self.entries[span.clone()],
                &self.entry_fields[span.clone()],
                &self.entry_absents[span.clone()],
                |f| row[f],
            );
            out[t % k] += self.weights[span][leaf];
        }
    }
}

// Compile-time thread-safety contract: the serving layer shares one
// `Arc<FlatEnsemble>` across scheduler shards and hands `Predictor`s to
// worker threads, so losing either auto-trait (e.g. by adding an
// interior-mutable cache or `Rc` field) must fail the build here rather
// than at a distant use site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FlatEnsemble>();
    assert_send_sync::<Predictor>();
    assert_send_sync::<Model>();
    assert_send_sync::<TreeScorer>();
};

/// Serving-style scorer over raw records: the flat engine plus the
/// model's binnings, with **no per-call heap allocations** — the absent
/// bins are precomputed once at construction and the bins scratch
/// buffer is reused across calls, unlike [`Model::predict_raw`] which
/// re-discretizes into a fresh vector per record.
///
/// # Thread safety
///
/// `Predictor` is `Send + Sync` (compile-time asserted above), but its
/// scoring methods take `&mut self` for the scratch buffer — so share
/// it by giving each thread its own clone (the flat tables are cheap to
/// clone relative to per-call allocation, or share one
/// `Arc<FlatEnsemble>` and keep per-thread scratch separately).
#[derive(Debug, Clone)]
pub struct Predictor {
    flat: FlatEnsemble,
    binnings: Vec<FieldBinning>,
    bins: Vec<u32>,
    mode: ExecMode,
}

impl Predictor {
    /// Build a predictor from a trained model (interpreted
    /// [`ExecMode::Sequential`] walk; see [`Predictor::with_mode`]).
    ///
    /// # Errors
    /// Propagates [`TableLoweringError`] for trees too large to encode.
    pub fn from_model(model: &Model) -> Result<Self, TableLoweringError> {
        Ok(Predictor {
            flat: FlatEnsemble::from_model(model)?,
            binnings: model.binnings.clone(),
            bins: Vec::new(),
            mode: ExecMode::Sequential,
        })
    }

    /// Select the single-record scoring engine: [`ExecMode::Compiled`]
    /// walks the cached bytecode program (built eagerly here so the
    /// first request does not pay the compile), every other mode walks
    /// the interpreted flat tables. Results are bit-identical either
    /// way.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        if mode == ExecMode::Compiled {
            let _ = self.flat.compiled();
        }
        self.mode = mode;
        self
    }

    /// The currently selected single-record scoring engine.
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// Transformed prediction for one raw record; bit-identical to
    /// [`Model::predict_raw`].
    pub fn predict_one(&mut self, record: &[RawValue]) -> f64 {
        self.flat.expect_scalar();
        assert_eq!(record.len(), self.binnings.len(), "record arity mismatch");
        self.bins.clear();
        self.bins.extend(record.iter().zip(&self.binnings).map(|(v, b)| b.bin_of(*v)));
        let margin = if self.mode == ExecMode::Compiled {
            self.flat.compiled().margin_of_row(&self.bins)
        } else {
            self.flat.margin_of_row(&self.bins)
        };
        self.flat.objective.transform(margin)
    }

    /// Score a mini-batch of raw records into a reusable output buffer
    /// (cleared first).
    pub fn predict_many<'a, I>(&mut self, records: I, out: &mut Vec<f64>)
    where
        I: IntoIterator<Item = &'a [RawValue]>,
    {
        out.clear();
        for r in records {
            out.push(self.predict_one(r));
        }
    }

    /// Transformed output vector for one raw record (softmax
    /// probabilities for multiclass models; a single slot for scalar
    /// objectives). `out` is overwritten and sized to `num_outputs`,
    /// with no other allocation — the multi-output serving twin of
    /// [`Predictor::predict_one`]. Always walks the interpreted flat
    /// tables (the compiled program interprets scalar ensembles only).
    pub fn predict_one_outputs(&mut self, record: &[RawValue], out: &mut Vec<f64>) {
        assert_eq!(record.len(), self.binnings.len(), "record arity mismatch");
        self.bins.clear();
        self.bins.extend(record.iter().zip(&self.binnings).map(|(v, b)| b.bin_of(*v)));
        out.clear();
        out.resize(self.flat.num_outputs, 0.0);
        self.flat.margins_of_row_outputs(&self.bins, out);
        self.flat.objective.transform_outputs(out);
    }

    /// The underlying flat ensemble.
    pub fn flat(&self) -> &FlatEnsemble {
        &self.flat
    }
}

/// Incremental single-tree scorer — the flat engine's unit of work for
/// pipelines that grow a model one tree at a time (validation-driven
/// early stopping scores the held-out set after *each* tree, so
/// re-lowering the whole ensemble per round would be quadratic).
///
/// One tree is lowered to its contiguous 16-byte table with the same
/// pre-resolved per-entry field/absent arrays and exact `f64` leaf
/// weights [`FlatEnsemble`] uses, so [`TreeScorer::add_margins`] is
/// bit-identical to accumulating [`Tree::traverse_binned`] weights.
#[derive(Debug, Clone)]
pub struct TreeScorer {
    entries: Vec<TableEntry>,
    fields: Vec<u32>,
    absents: Vec<u32>,
    weights: Vec<f64>,
}

impl TreeScorer {
    /// Lower one tree against the model's binnings.
    ///
    /// # Errors
    /// Propagates [`TableLoweringError`] if the tree exceeds the `u16`
    /// entry encoding; callers fall back to the node walk.
    pub fn try_new(tree: &Tree, binnings: &[FieldBinning]) -> Result<Self, TableLoweringError> {
        let table = TreeTable::try_from_tree(tree)?;
        let n = table.entries.len();
        let mut fields = Vec::with_capacity(n);
        let mut absents = Vec::with_capacity(n);
        let mut weights = Vec::with_capacity(n);
        resolve_tree_entries(tree, binnings, &mut weights, &mut fields, &mut absents);
        Ok(TreeScorer { entries: table.entries, fields, absents, weights })
    }

    /// Add this tree's exact leaf weight to every record's margin.
    pub fn add_margins(&self, data: &BinnedDataset, margins: &mut [f64]) {
        assert_eq!(data.num_records(), margins.len(), "margin buffer must cover every record");
        for (r, m) in margins.iter_mut().enumerate() {
            let (leaf, _) = walk_row_ref(&self.entries, &self.fields, &self.absents, data.row(r));
            *m += self.weights[leaf];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::ColumnarMirror;
    use crate::dataset::Dataset;
    use crate::schema::{DatasetSchema, FieldSchema};
    use crate::train::{train, TrainConfig};
    use crate::tree::Tree;

    /// Train a real multi-tree model on > 2 blocks of records (mixed
    /// numeric/categorical, with missing values) so blocked scoring
    /// crosses block boundaries.
    fn trained_model() -> (Model, BinnedDataset, Dataset) {
        let schema = DatasetSchema::new(vec![
            FieldSchema::numeric_with_bins("x", 16),
            FieldSchema::categorical("c", 3),
            FieldSchema::numeric_with_bins("y", 8),
        ]);
        let mut ds = Dataset::new(schema);
        for i in 0..700 {
            let x = if i % 13 == 0 { RawValue::Missing } else { RawValue::Num(i as f32) };
            let c = RawValue::Cat(i % 3);
            let y = RawValue::Num(((i * 7) % 100) as f32);
            let label = f32::from(u8::from(i >= 350)) + ((i % 3) as f32) * 0.1;
            ds.push_record(&[x, c, y], label);
        }
        let data = BinnedDataset::from_dataset(&ds);
        let mirror = ColumnarMirror::from_binned(&data);
        let cfg = TrainConfig { num_trees: 6, max_depth: 4, ..Default::default() };
        let (model, _) = train(&data, &mirror, &cfg);
        (model, data, ds)
    }

    #[test]
    fn all_exec_modes_match_node_walk_bitwise() {
        let (model, data, _) = trained_model();
        let flat = FlatEnsemble::from_model(&model).expect("small trees lower");
        let expect = model.predict_batch(&data);
        for mode in [
            ExecMode::Sequential,
            ExecMode::RecordParallel,
            ExecMode::TreeParallel,
            ExecMode::Compiled,
        ] {
            let got = flat.predict_batch(&data, mode);
            assert_eq!(got.len(), expect.len());
            for (r, (a, b)) in got.iter().zip(&expect).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "mode {mode:?}, record {r}");
            }
        }
    }

    #[test]
    fn score_into_matches_predict_batch_bitwise() {
        let (model, data, _) = trained_model();
        let flat = FlatEnsemble::from_model(&model).expect("lowering");
        let expect = model.predict_batch(&data);
        // Scratch reuse: stale contents must not leak into any mode.
        let mut out = vec![f64::NAN; data.num_records()];
        for mode in [
            ExecMode::Sequential,
            ExecMode::RecordParallel,
            ExecMode::TreeParallel,
            ExecMode::Compiled,
        ] {
            flat.score_into(&data, mode, &mut out);
            for (r, (a, b)) in out.iter().zip(&expect).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "mode {mode:?}, record {r}");
            }
        }
    }

    #[test]
    fn score_bins_into_matches_predict_batch_bitwise() {
        let (model, data, _) = trained_model();
        let flat = FlatEnsemble::from_model(&model).expect("lowering");
        let expect = model.predict_batch(&data);
        // Rebuild the row-major bin matrix the serving path would hand in.
        let n = data.num_records();
        let mut bins = Vec::with_capacity(n * flat.num_fields());
        for r in 0..n {
            data.row(r).extend_into(&mut bins);
        }
        let mut out = vec![f64::NAN; n];
        flat.score_bins_into(&bins, &mut out);
        for (r, (a, b)) in out.iter().zip(&expect).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "record {r}");
        }
        // Sub-batch (fewer rows than one block, serving-sized).
        let m = 7;
        let mut small = vec![0.0; m];
        flat.score_bins_into(&bins[..m * flat.num_fields()], &mut small);
        for (r, (a, b)) in small.iter().zip(&expect[..m]).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "record {r}");
        }
    }

    #[test]
    #[should_panic(expected = "output buffer")]
    fn score_into_rejects_short_buffer() {
        let (model, data, _) = trained_model();
        let flat = FlatEnsemble::from_model(&model).expect("lowering");
        let mut out = vec![0.0; data.num_records() - 1];
        flat.score_into(&data, ExecMode::Sequential, &mut out);
    }

    #[test]
    #[should_panic(expected = "bin matrix shape")]
    fn score_bins_into_rejects_ragged_matrix() {
        let (model, _, _) = trained_model();
        let flat = FlatEnsemble::from_model(&model).expect("lowering");
        let bins = vec![0u32; flat.num_fields() * 2 + 1];
        let mut out = vec![0.0; 2];
        flat.score_bins_into(&bins, &mut out);
    }

    #[test]
    fn paths_match_node_walk() {
        let (model, data, _) = trained_model();
        let flat = FlatEnsemble::from_model(&model).expect("lowering");
        let (preds_a, paths_a) = model.predict_batch_with_paths(&data);
        let (preds_b, paths_b) = flat.predict_batch_with_paths(&data);
        assert_eq!(paths_a, paths_b);
        for (a, b) in preds_a.iter().zip(&preds_b) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn gather_lists_cover_each_trees_fields() {
        let (model, _, _) = trained_model();
        let flat = FlatEnsemble::from_model(&model).expect("lowering");
        for (t, tree) in model.trees.iter().enumerate() {
            assert_eq!(flat.gather_list(t), tree.fields_used().as_slice(), "tree {t}");
            let absents: Vec<u32> = tree
                .fields_used()
                .iter()
                .map(|&f| model.binnings[f as usize].absent_bin())
                .collect();
            assert_eq!(flat.gather_absents(t), absents.as_slice(), "tree {t}");
        }
    }

    #[test]
    fn predictor_matches_predict_raw_and_reuses_buffers() {
        let (model, _, ds) = trained_model();
        let mut pred = Predictor::from_model(&model).expect("lowering");
        let mut record = Vec::new();
        for r in (0..700).step_by(53) {
            record.clear();
            for f in 0..ds.num_fields() {
                record.push(ds.value(r, f));
            }
            let a = pred.predict_one(&record);
            let b = model.predict_raw(&record);
            assert_eq!(a.to_bits(), b.to_bits(), "record {r}");
        }
        // Mini-batch into a reused output buffer.
        let recs: Vec<Vec<RawValue>> =
            (0..5).map(|r| (0..ds.num_fields()).map(|f| ds.value(r, f)).collect()).collect();
        let mut out = vec![0.0; 99]; // stale content must be cleared
        pred.predict_many(recs.iter().map(Vec::as_slice), &mut out);
        assert_eq!(out.len(), 5);
        for (r, p) in out.iter().enumerate() {
            let rec: Vec<RawValue> = (0..ds.num_fields()).map(|f| ds.value(r, f)).collect();
            assert_eq!(p.to_bits(), model.predict_raw(&rec).to_bits());
        }
    }

    #[test]
    fn predictor_compiled_mode_matches_predict_raw() {
        let (model, _, ds) = trained_model();
        let mut pred =
            Predictor::from_model(&model).expect("lowering").with_mode(ExecMode::Compiled);
        assert_eq!(pred.exec_mode(), ExecMode::Compiled);
        let mut record = Vec::new();
        for r in (0..700).step_by(37) {
            record.clear();
            for f in 0..ds.num_fields() {
                record.push(ds.value(r, f));
            }
            assert_eq!(
                pred.predict_one(&record).to_bits(),
                model.predict_raw(&record).to_bits(),
                "record {r}"
            );
        }
    }

    #[test]
    fn leaf_only_ensemble_scores_base_plus_leaves() {
        let (model, data, _) = trained_model();
        let stub = Model {
            trees: vec![Tree::leaf(0.25), Tree::leaf(-0.125)],
            base_score: 0.5,
            objective: Objective::SquaredError,
            num_outputs: 1,
            schema: model.schema.clone(),
            binnings: model.binnings.clone(),
        };
        let flat = FlatEnsemble::from_model(&stub).expect("leaf trees lower");
        assert_eq!(flat.num_trees(), 2);
        assert!(flat.gather_list(0).is_empty());
        for mode in [
            ExecMode::Sequential,
            ExecMode::RecordParallel,
            ExecMode::TreeParallel,
            ExecMode::Compiled,
        ] {
            let got = flat.predict_batch(&data, mode);
            assert!(got.iter().all(|&p| p == 0.625), "mode {mode:?}");
        }
        let (_, paths) = flat.predict_batch_with_paths(&data);
        assert!(paths.iter().all(|&p| p == 0));
    }

    /// A 3-class softmax model over real trained trees: reuse the
    /// trained ensemble's trees round-robin so walks are non-trivial.
    fn softmax_model() -> (Model, BinnedDataset) {
        let (model, data, _) = trained_model();
        let stub = Model {
            trees: model.trees.clone(),
            base_score: 0.0,
            objective: Objective::Softmax { num_class: 3 },
            num_outputs: 3,
            schema: model.schema.clone(),
            binnings: model.binnings.clone(),
        };
        (stub, data)
    }

    #[test]
    fn multi_output_batch_matches_model_outputs_bitwise() {
        let (model, data) = softmax_model();
        let flat = FlatEnsemble::from_model(&model).expect("lowering");
        assert_eq!(flat.num_outputs(), 3);
        let expect = model.predict_batch_outputs(&data);
        let got = flat.predict_batch_outputs(&data);
        assert_eq!(got.len(), expect.len());
        for (r, (a, b)) in got.iter().zip(&expect).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "slot {r}");
        }
        // Rows are probability vectors.
        for row in got.chunks(3) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        // The bin-matrix serving path agrees.
        let n = data.num_records();
        let mut bins = Vec::with_capacity(n * flat.num_fields());
        for r in 0..n {
            data.row(r).extend_into(&mut bins);
        }
        let mut out = vec![f64::NAN; n * 3];
        flat.score_bins_outputs_into(&bins, &mut out);
        for (a, b) in out.iter().zip(&expect) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn predictor_outputs_match_model_raw_outputs() {
        let (model, _) = softmax_model();
        let (_, _, ds) = trained_model();
        let mut pred = Predictor::from_model(&model).expect("lowering");
        let mut out = Vec::new();
        for r in (0..700).step_by(101) {
            let rec: Vec<RawValue> = (0..ds.num_fields()).map(|f| ds.value(r, f)).collect();
            pred.predict_one_outputs(&rec, &mut out);
            let expect = model.predict_raw_outputs(&rec);
            assert_eq!(out.len(), expect.len());
            for (a, b) in out.iter().zip(&expect) {
                assert_eq!(a.to_bits(), b.to_bits(), "record {r}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "scalar scoring on a multi-output ensemble")]
    fn scalar_scoring_rejects_multi_output_models() {
        let (model, data) = softmax_model();
        let flat = FlatEnsemble::from_model(&model).expect("lowering");
        let _ = flat.predict_batch(&data, ExecMode::Sequential);
    }

    #[test]
    fn one_output_outputs_path_matches_scalar_margins() {
        let (model, data, _) = trained_model();
        let flat = FlatEnsemble::from_model(&model).expect("lowering");
        let expect = model.predict_batch(&data);
        let got = flat.predict_batch_outputs(&data);
        for (r, (a, b)) in got.iter().zip(&expect).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "record {r}");
        }
    }

    #[test]
    fn flat_layout_accounting() {
        let (model, _, _) = trained_model();
        let flat = FlatEnsemble::from_model(&model).expect("lowering");
        assert_eq!(flat.num_trees(), model.num_trees());
        let nodes: usize = model.trees.iter().map(Tree::num_nodes).sum();
        assert_eq!(flat.num_entries(), nodes);
        assert_eq!(flat.byte_size(), nodes * TABLE_ENTRY_BYTES);
        assert_eq!(flat.base_score(), model.base_score);
        assert_eq!(flat.objective(), model.objective);
        assert_eq!(flat.num_outputs(), 1);
    }

    #[test]
    fn tree_scorer_matches_node_walk_bit_for_bit() {
        let (model, data, _) = trained_model();
        let n = data.num_records();
        // Accumulate tree by tree through the flat scorer…
        let mut flat_margins = vec![model.base_score; n];
        for tree in &model.trees {
            let scorer = TreeScorer::try_new(tree, &model.binnings).expect("small tree lowers");
            scorer.add_margins(&data, &mut flat_margins);
        }
        // …and compare against the per-record node walk.
        for (r, m) in flat_margins.iter().enumerate() {
            assert_eq!(m.to_bits(), model.margin_binned(&data, r).to_bits(), "record {r}");
        }
    }

    #[test]
    #[should_panic(expected = "margin buffer")]
    fn tree_scorer_rejects_short_margin_buffer() {
        let (model, data, _) = trained_model();
        let scorer = TreeScorer::try_new(&model.trees[0], &model.binnings).unwrap();
        let mut margins = vec![0.0; data.num_records() - 1];
        scorer.add_margins(&data, &mut margins);
    }

    #[test]
    #[should_panic(expected = "field arity")]
    fn arity_mismatch_is_rejected() {
        let (model, _, _) = trained_model();
        let flat = FlatEnsemble::from_model(&model).expect("lowering");
        let schema = DatasetSchema::new(vec![FieldSchema::numeric_with_bins("only", 4)]);
        let mut ds = Dataset::new(schema);
        ds.push_record(&[RawValue::Num(1.0)], 0.0);
        let narrow = BinnedDataset::from_dataset(&ds);
        let _ = flat.predict_batch(&narrow, ExecMode::Sequential);
    }
}
