//! Online serving: train → register v1 (from `.bstr` bytes) → serve
//! under concurrent load → hot-swap to v2 → drain → retire v1 — the
//! full lifecycle of the `booster-serve` subsystem, plus a quick TCP
//! round trip through the length-prefixed front-end.
//!
//! Run with: `cargo run --release --example serving`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use booster_repro::datagen::{default_objective, generate, Benchmark};
use booster_repro::gbdt::prelude::*;
use booster_repro::serve::{
    BatchPolicy, ModelRegistry, ResponseSlot, ServeConfig, Server, TcpFrontend, TcpScoreClient,
};

fn main() {
    // --- Train two model generations over one schema. --------------------
    let ds = generate(Benchmark::Higgs, 6_000, 7);
    let data = BinnedDataset::from_dataset(&ds);
    let mirror = ColumnarMirror::from_binned(&data);
    let train_gen = |trees| {
        let cfg = TrainConfig {
            num_trees: trees,
            max_depth: 5,
            objective: default_objective(Benchmark::Higgs),
            ..Default::default()
        };
        train(&data, &mirror, &cfg).0
    };
    let model_v1 = train_gen(15);
    let model_v2 = train_gen(30);
    let records: Vec<Arc<[RawValue]>> =
        (0..1024).map(|r| (0..ds.num_fields()).map(|f| ds.value(r, f)).collect()).collect();

    // --- Register v1 through the serialized wire format. ------------------
    let registry = Arc::new(ModelRegistry::new());
    let v1_bytes = model_to_bytes(&model_v1);
    let v1 = registry.register_bytes(&v1_bytes).expect("v1 registers");
    println!("registered v1 from {} .bstr bytes (auto-activated)", v1_bytes.len());

    // --- Serve under concurrent closed-loop load. -------------------------
    let config = ServeConfig {
        policy: BatchPolicy { max_batch: 32, max_delay: std::time::Duration::ZERO },
        ..Default::default()
    };
    let server = Server::start(Arc::clone(&registry), config).expect("server starts");
    let handle = server.handle();
    let stop = Arc::new(AtomicBool::new(false));
    let swap_seen = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for c in 0..4usize {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            let swap_seen = Arc::clone(&swap_seen);
            let records = &records;
            let model_v1 = &model_v1;
            let model_v2 = &model_v2;
            s.spawn(move || {
                let slot = ResponseSlot::new();
                let mut k = c;
                while !stop.load(Ordering::Relaxed) {
                    let idx = k % records.len();
                    k = k.wrapping_add(13);
                    let resp = handle
                        .score_with(&slot, Arc::clone(&records[idx]), None)
                        .expect("no request is lost, even mid-swap");
                    // Every response is bit-identical to offline scoring
                    // by the version that answered it.
                    let offline = if resp.version == 1 {
                        model_v1.predict_raw(&records[idx])
                    } else {
                        swap_seen.fetch_add(1, Ordering::Relaxed);
                        model_v2.predict_raw(&records[idx])
                    };
                    assert_eq!(resp.prediction().to_bits(), offline.to_bits());
                }
            });
        }
        // Mid-load: register v2, hot-swap, drain, retire v1.
        std::thread::sleep(std::time::Duration::from_millis(300));
        let v2 = registry.register(&model_v2).expect("v2 registers");
        registry.activate(v2).expect("v2 activates");
        println!("hot-swapped v{v1} → v{v2} under load");
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });
    handle.drain();
    registry.retire(v1).expect("v1 drained, retire is safe");
    assert!(swap_seen.load(Ordering::Relaxed) > 0, "v2 must have served after the swap");

    let stats = handle.stats();
    assert_eq!(stats.accepted, stats.completed, "zero requests lost across the swap");
    println!(
        "served {} requests (0 lost, {} rejected) | latency p50/p99: {}/{} µs | mean batch {:.1}",
        stats.completed,
        stats.rejected,
        stats.latency.quantile(0.5),
        stats.latency.quantile(0.99),
        stats.batch_sizes.mean()
    );
    println!("per-version served counts: {:?}", registry.version_stats());

    // --- The same service over TCP. ---------------------------------------
    let frontend = TcpFrontend::bind("127.0.0.1:0", server.handle()).expect("bind");
    let mut client = TcpScoreClient::connect(frontend.local_addr()).expect("connect");
    let got = client.score(&records[5], None).expect("transport").expect("scored");
    assert_eq!(got.prediction().to_bits(), model_v2.predict_raw(&records[5]).to_bits());
    println!(
        "tcp round trip on {}: version {} prediction {:.4}",
        frontend.local_addr(),
        got.version,
        got.prediction()
    );
    frontend.shutdown();
    server.shutdown();
    println!("drained and shut down cleanly");
}
