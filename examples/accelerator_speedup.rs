//! End-to-end accelerator comparison on one workload: functional
//! training drives the Booster / Ideal CPU / Ideal GPU / inter-record
//! timing models plus the energy accounting — a miniature of the paper's
//! Figs 7, 8 and 10 on the Higgs-like dataset.
//!
//! Run with: `cargo run --release --example accelerator_speedup`

use booster_repro::datagen::{default_objective, generate_binned, Benchmark};
use booster_repro::gbdt::prelude::*;
use booster_repro::sim::{
    energy_of, speedup_over, ArchRun, BandwidthModel, BoosterConfig, BoosterSim, HostModel,
    IdealMachineConfig, IdealSim, InterRecordSim,
};

fn line(run: &ArchRun, base: &ArchRun) {
    let s = &run.steps;
    println!(
        "  {:<14} {:8.2} s  (step1 {:6.2}  step2 {:6.2}  step3 {:6.2}  step5 {:6.2})  {:>7.2}x",
        run.name,
        run.total(),
        s.step1,
        s.step2,
        s.step3,
        s.step5,
        speedup_over(base, run)
    );
}

fn main() {
    let benchmark = Benchmark::Higgs;
    println!("workload: {} (10M records at paper scale, 500 trees)", benchmark.name());

    // Functional training at sample scale, instrumented.
    let (data, mirror) = generate_binned(benchmark, 40_000, 3);
    let cfg = TrainConfig {
        num_trees: 40,
        max_depth: 6,
        objective: default_objective(benchmark),
        collect_phases: true,
        ..Default::default()
    };
    let (_, report) = train(&data, &mirror, &cfg);
    // Scale to the paper's dataset size and tree count.
    let log = report.phase_log.unwrap().scaled(10_000_000.0 / 40_000.0);
    let tree_scale = 500.0 / 40.0;

    let bw = BandwidthModel::new(booster_dram::DramConfig::default());
    let host = HostModel::default();
    let (booster, diag) = BoosterSim::new(BoosterConfig::default(), &bw).training_time(&log, &host);
    let cpu = IdealSim::cpu(&bw).training_time(&log, &host);
    let gpu = IdealSim::gpu(&bw).training_time(&log, &host);
    let ir = InterRecordSim::matching_booster(&BoosterConfig::default(), &bw).training_time(
        &log,
        benchmark.spec().features,
        &host,
    );

    let scale = |r: &ArchRun| ArchRun {
        name: r.name.clone(),
        steps: r.steps.scaled(tree_scale, tree_scale, tree_scale, tree_scale),
        dram_blocks: (r.dram_blocks as f64 * tree_scale) as u64,
        sram_accesses: (r.sram_accesses as f64 * tree_scale) as u64,
    };
    let (booster, cpu, gpu, ir) = (scale(&booster), scale(&cpu), scale(&gpu), scale(&ir));

    println!("\nmodeled training time (500 trees):");
    line(&cpu, &cpu);
    line(&gpu, &cpu);
    line(&ir, &cpu);
    line(&booster, &cpu);
    println!(
        "\nBooster diagnostics: {} SRAMs/copy, {:.0} histogram replicas, capacity \
         utilization {:.0}%",
        diag.mapping.srams_used(),
        diag.replication,
        diag.mapping.capacity_utilization * 100.0
    );

    let e_cpu = energy_of(&cpu, IdealMachineConfig::ideal_cpu().sram_energy_norm);
    let e_gpu = energy_of(&gpu, IdealMachineConfig::ideal_gpu().sram_energy_norm);
    let e_b = energy_of(&booster, 0.71);
    println!("\nenergy (normalized to Ideal 32-core):");
    println!(
        "  SRAM : CPU 1.00   GPU {:.2}   Booster {:.2}",
        e_gpu.sram / e_cpu.sram,
        e_b.sram / e_cpu.sram
    );
    println!(
        "  DRAM : CPU 1.00   GPU {:.2}   Booster {:.2}",
        e_gpu.dram / e_cpu.dram,
        e_b.dram / e_cpu.dram
    );
}
