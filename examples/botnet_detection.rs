//! Botnet attack detection — the paper's IoT workload (N-BaIoT-like):
//! 115 traffic statistics per record, nearly-separable classes. Shows
//! the shallow-tree behaviour the paper highlights for IoT (Section IV)
//! and its effect on batch inference.
//!
//! Run with: `cargo run --release --example botnet_detection`

use booster_repro::datagen::{generate_binned, Benchmark};
use booster_repro::gbdt::metrics;
use booster_repro::gbdt::prelude::*;
use booster_repro::gbdt::split::SplitParams;
use booster_repro::sim::{
    booster_inference, ideal_inference, BandwidthModel, BoosterConfig, IdealMachineConfig,
    InferenceWorkload, WorkModel,
};

fn main() {
    let (data, mirror) = generate_binned(Benchmark::Iot, 50_000, 5);
    let cfg = TrainConfig {
        num_trees: 60,
        max_depth: 6,
        learning_rate: 0.3,
        objective: Objective::Logistic,
        // A complexity penalty stops noise splits; with near-separable
        // classes the trees stay shallow — the paper's IoT behaviour.
        split: SplitParams { gamma: 4.0, ..Default::default() },
        ..Default::default()
    };
    let (model, report) = train(&data, &mirror, &cfg);

    let preds = model.predict_batch_parallel(&data);
    let labels: Vec<f64> = data.labels().iter().map(|&y| f64::from(y)).collect();
    println!(
        "botnet detection: accuracy {:.4}, AUC {:.4}",
        metrics::accuracy(&preds, &labels, 0.5),
        metrics::auc(&preds, &labels)
    );
    println!(
        "tree shapes: {} trees, mean leaf depth {:.2}, max depth {} (shallow, as the paper \
         observes for IoT)",
        model.num_trees(),
        model.mean_leaf_depth(),
        model.max_depth()
    );
    let f = report.times.fractions();
    println!(
        "sequential breakdown: step1 {:.0}% step2 {:.0}% step3 {:.0}% step5 {:.0}% — step 1 \
         dominates because shallow trees do most binning near the root",
        f[0] * 100.0,
        f[1] * 100.0,
        f[2] * 100.0,
        f[3] * 100.0
    );

    // Batch inference on the accelerator: shallow trees narrow Booster's
    // speedup because its pipeline interval follows the *maximum* tree
    // depth while the CPU's work follows the shorter actual paths.
    let w = InferenceWorkload::measure(&model, &data).scaled(7_000_000.0 / 50_000.0);
    let bw = BandwidthModel::new(booster_dram::DramConfig::default());
    let b = booster_inference(&BoosterConfig::default(), &bw, &w);
    let c = ideal_inference(
        &IdealMachineConfig::ideal_cpu(),
        &WorkModel::default(),
        &bw,
        &w,
        "Ideal 32-core",
    );
    println!(
        "batch inference (7M records, {} trees): Booster {:.1} ms vs Ideal 32-core {:.1} ms \
         = {:.1}x",
        w.num_trees,
        b.total() * 1e3,
        c.total() * 1e3,
        c.total() / b.total()
    );
}
