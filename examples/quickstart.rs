//! Quickstart: build a small table-based dataset (the paper's
//! frequent-flier running example), train a gradient-boosted tree model,
//! and predict.
//!
//! Run with: `cargo run --release --example quickstart`

use booster_repro::gbdt::prelude::*;

fn main() {
    // --- 1. Define the schema (Figure 2 of the paper). -----------------
    let schema = DatasetSchema::new(vec![
        FieldSchema::categorical("status", 3), // silver / gold / platinum
        FieldSchema::categorical("segment", 2), // domestic / international
        FieldSchema::numeric("ffmiles"),
    ]);

    // --- 2. Fill the table: will the customer buy an upgrade? ----------
    let mut table = Dataset::new(schema);
    let mut state = 0xC0FFEEu64;
    let mut rng = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f32) / (u32::MAX >> 1) as f32
    };
    for i in 0..20_000 {
        let status = (i % 3) as u32;
        let miles = rng() * 120_000.0;
        let segment = if rng() < 0.03 {
            RawValue::Missing // not every record has every field
        } else {
            RawValue::Cat((i % 2) as u32)
        };
        // Ground truth: frequent fliers with high status upgrade.
        let upgrade = (miles >= 50_000.0 && status >= 1) || miles >= 100_000.0;
        let label = if rng() < 0.02 { !upgrade } else { upgrade };
        table.push_record(
            &[RawValue::Cat(status), segment, RawValue::Num(miles)],
            label as u8 as f32,
        );
    }

    // --- 3. Preprocess: quantile binning + the redundant column format.
    let binned = BinnedDataset::from_dataset(&table);
    let mirror = ColumnarMirror::from_binned(&binned);
    println!(
        "dataset: {} records x {} fields ({} one-hot features, {} histogram bins)",
        binned.num_records(),
        binned.num_fields(),
        binned.schema().num_features(),
        binned.total_bins()
    );

    // --- 4. Train. ------------------------------------------------------
    let cfg = TrainConfig {
        num_trees: 50,
        max_depth: 4,
        learning_rate: 0.2,
        objective: Objective::Logistic,
        ..Default::default()
    };
    let (model, report) = train(&binned, &mirror, &cfg);
    println!(
        "trained {} trees (max depth {}, mean leaf depth {:.2})",
        model.num_trees(),
        model.max_depth(),
        model.mean_leaf_depth()
    );
    println!(
        "loss: {:.4} -> {:.4}",
        report.loss_history.first().unwrap(),
        report.loss_history.last().unwrap()
    );
    let f = report.times.fractions();
    println!(
        "step breakdown: step1 {:.0}%  step2 {:.0}%  step3 {:.0}%  step5 {:.0}%",
        f[0] * 100.0,
        f[1] * 100.0,
        f[2] * 100.0,
        f[3] * 100.0
    );

    // --- 5. Evaluate + predict single records. --------------------------
    let preds = model.predict_batch(&binned);
    let labels: Vec<f64> = binned.labels().iter().map(|&y| f64::from(y)).collect();
    let acc = booster_repro::gbdt::metrics::accuracy(&preds, &labels, 0.5);
    let auc = booster_repro::gbdt::metrics::auc(&preds, &labels);
    println!("training accuracy {:.3}, AUC {:.3}", acc, auc);

    let gold_flier =
        model.predict_raw(&[RawValue::Cat(1), RawValue::Cat(0), RawValue::Num(80_000.0)]);
    let new_customer =
        model.predict_raw(&[RawValue::Cat(0), RawValue::Missing, RawValue::Num(4_000.0)]);
    println!("P(upgrade | gold, 80k miles)     = {gold_flier:.3}");
    println!("P(upgrade | silver, 4k miles)    = {new_customer:.3}");
    assert!(gold_flier > 0.5 && new_customer < 0.5);
    println!("ok");
}
