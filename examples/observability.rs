//! The unified telemetry loop, end to end: train with span tracing on,
//! serve the model over TCP, then read the same process-wide metrics
//! registry three ways — in process, over the scoring connection's
//! introspection frame op, and over the plain-text HTTP endpoint — and
//! finally export the buffered spans as Chrome trace-event JSON.
//!
//! Run with: `cargo run --release --example observability`

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;

use booster_repro::datagen::{default_objective, generate, Benchmark};
use booster_repro::gbdt::prelude::*;
use booster_repro::obs::span;
use booster_repro::serve::{ModelRegistry, ServeConfig, Server, TcpFrontend, TcpScoreClient};

fn main() {
    // --- Train with span tracing enabled. ---------------------------------
    span::set_enabled(true);
    let ds = generate(Benchmark::Higgs, 4_000, 7);
    let data = BinnedDataset::from_dataset(&ds);
    let mirror = ColumnarMirror::from_binned(&data);
    let cfg = TrainConfig {
        num_trees: 8,
        max_depth: 4,
        objective: default_objective(Benchmark::Higgs),
        ..Default::default()
    };
    let (model, report) = train(&data, &mirror, &cfg);
    println!(
        "trained {} trees (step1 {:?}, step5 {:?}); span aggregate:",
        model.trees.len(),
        report.times.step1,
        report.times.step5
    );
    print!("{}", span::render_aggregate());
    let aggs = span::aggregate();
    assert!(
        aggs.iter().any(|a| a.name == "step1_build_hist"),
        "training must emit step1_build_hist spans"
    );

    // --- Serve it, scoring a few records so the counters move. ------------
    let registry = Arc::new(ModelRegistry::new());
    registry.register(&model).expect("model registers");
    let server = Server::start(Arc::clone(&registry), ServeConfig::default()).expect("server");
    let frontend = TcpFrontend::bind("127.0.0.1:0", server.handle()).expect("bind frontend");
    let mut client = TcpScoreClient::connect(frontend.local_addr()).expect("connect client");
    for r in 0..16 {
        let record: Arc<[RawValue]> = (0..ds.num_fields()).map(|f| ds.value(r, f)).collect();
        client.score(&record, None).expect("transport").expect("scored");
    }

    // --- Read the registry over the scoring connection (introspect op). ---
    let text = client.fetch_metrics().expect("introspection frame");
    assert!(
        text.contains("serve_requests_total{result=\"completed\"}"),
        "introspection text must report completed requests:\n{text}"
    );
    println!("\nintrospection over the scoring socket ({} bytes):", text.len());
    for line in text.lines().filter(|l| l.starts_with("serve_requests_total")) {
        println!("  {line}");
    }
    // The same connection keeps scoring after an introspection exchange.
    let record: Arc<[RawValue]> = (0..ds.num_fields()).map(|f| ds.value(0, f)).collect();
    client.score(&record, None).expect("transport").expect("still scoring");

    // --- Scrape the standalone plain-text endpoint over HTTP. -------------
    let endpoint = booster_repro::obs::serve_text("127.0.0.1:0").expect("bind endpoint");
    let mut stream = TcpStream::connect(endpoint.addr()).expect("connect endpoint");
    stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    assert!(response.starts_with("HTTP/1.0 200 OK"), "endpoint must answer 200");
    let body = response.split("\r\n\r\n").nth(1).expect("body");
    assert!(body.contains("train_runs_total"), "scrape must include trainer metrics:\n{body}");
    println!("\nHTTP scrape on {} returned {} metric lines", endpoint.addr(), body.lines().count());
    endpoint.shutdown();

    // --- Export the span ring as Chrome trace-event JSON. ------------------
    let trace = span::chrome_trace_json();
    assert!(trace.starts_with("{\"traceEvents\":["), "trace must be Chrome schema");
    let path = std::env::temp_dir().join("booster_observability_trace.json");
    std::fs::write(&path, &trace).expect("write trace");
    println!("wrote {} bytes of Chrome trace JSON to {}", trace.len(), path.display());

    frontend.shutdown();
    server.shutdown();
    span::set_enabled(false);
    println!("done");
}
