//! Distributed data-parallel training: shard a dataset across two
//! worker processes' worth of state behind localhost TCP, train through
//! the coordinator's unchanged growth engine, verify the model is
//! **bit-identical** to local training, then serve it through the
//! scoring service — the full train-anywhere/serve-anywhere loop.
//!
//! Run with: `cargo run --release --example distributed`

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use booster_repro::datagen::{default_objective, generate, Benchmark};
use booster_repro::dist::{serve_worker_tcp, train_distributed, ShardPlan, TcpComm};
use booster_repro::gbdt::prelude::*;
use booster_repro::serve::{ModelRegistry, ServeConfig, Server, TcpFrontend, TcpScoreClient};

fn main() {
    // --- One dataset, one config. ----------------------------------------
    let ds = generate(Benchmark::Flight, 8_000, 42);
    let data = BinnedDataset::from_dataset(&ds);
    let mirror = ColumnarMirror::from_binned(&data);
    let cfg = TrainConfig {
        num_trees: 12,
        max_depth: 5,
        subsample: 0.9,
        objective: default_objective(Benchmark::Flight),
        ..Default::default()
    };

    // --- Local reference run. ---------------------------------------------
    let (local_model, local_report) = train(&data, &mirror, &cfg);

    // --- The same run, sharded across two TCP workers. ----------------------
    let workers = 2;
    let plan = ShardPlan::even(data.num_records(), workers);
    let shards = plan.shard(&data).expect("plan covers the dataset");
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for (k, shard) in shards.into_iter().enumerate() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind worker");
        let addr = listener.local_addr().expect("local addr");
        println!("worker {k}: {} records on {addr}", plan.range(k).len());
        addrs.push(addr);
        handles.push(std::thread::spawn(move || serve_worker_tcp(shard, listener)));
    }
    let comm = TcpComm::connect(&addrs, Duration::from_secs(30)).expect("connect workers");
    let out = train_distributed(&data, &mirror, &cfg, comm, &plan).expect("distributed train");
    for h in handles {
        h.join().expect("worker thread").expect("worker exits cleanly");
    }

    // --- The determinism contract, checked on real bits. --------------------
    assert_eq!(
        local_model.trees, out.model.trees,
        "distributed trees must be bit-identical to local"
    );
    assert_eq!(
        local_report.loss_history.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        out.report.loss_history.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        "loss history must be bit-identical too"
    );
    let summary = out.stats.summary();
    println!(
        "distributed == local: {} trees, {} loss entries, bit for bit",
        out.model.trees.len(),
        out.report.loss_history.len()
    );
    println!(
        "wire traffic: {} frames, {} bytes across {} histogram builds",
        summary.frames, summary.wire_bytes, summary.hist_builds
    );

    // --- Serve the distributed-trained model over TCP. ----------------------
    let registry = Arc::new(ModelRegistry::new());
    registry.register(&out.model).expect("model registers");
    let server = Server::start(Arc::clone(&registry), ServeConfig::default()).expect("server");
    let frontend = TcpFrontend::bind("127.0.0.1:0", server.handle()).expect("bind frontend");
    let mut client = TcpScoreClient::connect(frontend.local_addr()).expect("connect client");
    let record: Arc<[RawValue]> = (0..ds.num_fields()).map(|f| ds.value(17, f)).collect();
    let got = client.score(&record, None).expect("transport").expect("scored");
    assert_eq!(
        got.prediction().to_bits(),
        local_model.predict_raw(&record).to_bits(),
        "served prediction matches the local model exactly"
    );
    println!(
        "served distributed-trained model on {}: prediction {:.4}",
        frontend.local_addr(),
        got.prediction()
    );
    frontend.shutdown();
    server.shutdown();
    println!("done");
}
