//! Batch inference (offline analytics / scoring): train an ensemble,
//! score a large batch functionally (sequential vs rayon), and model the
//! same batch on Booster's inference engine (Section III-D).
//!
//! Run with: `cargo run --release --example batch_inference`

use std::time::Instant;

use booster_repro::datagen::{default_loss, generate_binned, Benchmark};
use booster_repro::gbdt::prelude::*;
use booster_repro::sim::{
    booster_inference, ideal_inference, BandwidthModel, BoosterConfig, IdealMachineConfig,
    InferenceWorkload, WorkModel,
};

fn main() {
    let (data, mirror) = generate_binned(Benchmark::Allstate, 60_000, 17);
    let cfg = TrainConfig {
        num_trees: 100,
        max_depth: 6,
        loss: default_loss(Benchmark::Allstate),
        ..Default::default()
    };
    let (model, _) = train(&data, &mirror, &cfg);
    println!(
        "model: {} trees, max depth {} ({} KB of tree tables)",
        model.num_trees(),
        model.max_depth(),
        model.trees.iter().map(|t| t.to_table().byte_size()).sum::<usize>() / 1024
    );

    // --- Functional batch scoring. --------------------------------------
    let t0 = Instant::now();
    let seq = model.predict_batch(&data);
    let t_seq = t0.elapsed();
    let t1 = Instant::now();
    let par = model.predict_batch_parallel(&data);
    let t_par = t1.elapsed();
    assert_eq!(seq, par);
    println!(
        "functional scoring of {} records: sequential {:.1} ms, rayon {:.1} ms ({:.1}x)",
        data.num_records(),
        t_seq.as_secs_f64() * 1e3,
        t_par.as_secs_f64() * 1e3,
        t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9)
    );

    // --- Accelerator model, scaled to a 10M-record batch x 500 trees. --
    let measured = InferenceWorkload::measure(&model, &data);
    let per_tree = measured.total_path_len as f64 / model.num_trees() as f64;
    let w = InferenceWorkload {
        n_records: 10_000_000,
        record_bytes: measured.record_bytes,
        num_trees: 500,
        total_path_len: (per_tree * 500.0 * (10_000_000.0 / 60_000.0)) as u64,
        max_depth: measured.max_depth,
    };
    let bw = BandwidthModel::new(booster_dram::DramConfig::default());
    let booster_cfg = BoosterConfig::default();
    let b = booster_inference(&booster_cfg, &bw, &w);
    let c = ideal_inference(
        &IdealMachineConfig::ideal_cpu(),
        &WorkModel::default(),
        &bw,
        &w,
        "Ideal 32-core",
    );
    let replicas = booster_cfg.total_bus() as usize / w.num_trees;
    println!(
        "\nmodeled batch inference (10M records x 500 trees, {} ensemble replicas on \
         {} BUs):",
        replicas,
        replicas * w.num_trees
    );
    println!(
        "  Ideal 32-core : {:8.1} ms  ({:.1} M records/s)",
        c.total() * 1e3,
        w.n_records as f64 / c.total() / 1e6
    );
    println!(
        "  Booster       : {:8.1} ms  ({:.1} M records/s)  -> {:.1}x",
        b.total() * 1e3,
        w.n_records as f64 / b.total() / 1e6,
        c.total() / b.total()
    );
}
