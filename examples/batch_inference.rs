//! Batch inference (offline analytics / scoring): train an ensemble,
//! score a large batch functionally — the per-record node walk against
//! the flat-ensemble blocked engine in its three execution modes and the
//! compiled branch-free bytecode program — and model the same batch on
//! Booster's inference engine (Section III-D).
//!
//! Run with: `cargo run --release --example batch_inference`

use std::time::Instant;

use booster_repro::datagen::{default_objective, generate_binned, Benchmark};
use booster_repro::gbdt::prelude::*;
use booster_repro::sim::{
    booster_inference, ideal_inference, BandwidthModel, BoosterConfig, IdealMachineConfig,
    InferenceWorkload, WorkModel,
};

fn main() {
    let (data, mirror) = generate_binned(Benchmark::Allstate, 60_000, 17);
    let cfg = TrainConfig {
        num_trees: 100,
        max_depth: 6,
        objective: default_objective(Benchmark::Allstate),
        ..Default::default()
    };
    let (model, _) = train(&data, &mirror, &cfg);
    let flat = FlatEnsemble::from_model(&model).expect("trees fit the u16 table encoding");
    println!(
        "model: {} trees, max depth {} ({} KB of flat tree tables, {} entries)",
        model.num_trees(),
        model.max_depth(),
        flat.byte_size() / 1024,
        flat.num_entries()
    );

    // --- Functional batch scoring: node walk vs the flat engine. ---------
    let t0 = Instant::now();
    let node_walk = model.predict_batch(&data);
    let t_node = t0.elapsed();
    let timed = |mode: ExecMode| {
        let t = Instant::now();
        let preds = flat.predict_batch(&data, mode);
        let dt = t.elapsed();
        // Every mode is bit-identical to the per-record node walk.
        assert!(preds.iter().zip(&node_walk).all(|(a, b)| a.to_bits() == b.to_bits()));
        dt
    };
    let t_flat = timed(ExecMode::Sequential);
    let t_rec = timed(ExecMode::RecordParallel);
    let t_tree = timed(ExecMode::TreeParallel);
    // Warm the one-time lowering outside the timed region, then report
    // the program's shape alongside the tables it was compiled from.
    let compiled = flat.compiled();
    println!(
        "compiled program: {} instrs in {} clusters ({} KB, {} entries DCE'd)",
        compiled.num_instrs(),
        compiled.num_clusters(),
        compiled.to_bytes().len() / 1024,
        compiled.dce_dropped()
    );
    let t_comp = timed(ExecMode::Compiled);
    println!("functional scoring of {} records (all bit-identical):", data.num_records());
    let mrps =
        |dt: std::time::Duration| data.num_records() as f64 / dt.as_secs_f64().max(1e-9) / 1e6;
    println!(
        "  node walk            : {:7.1} ms  ({:.2} M rec/s)",
        t_node.as_secs_f64() * 1e3,
        mrps(t_node)
    );
    println!(
        "  flat blocked         : {:7.1} ms  ({:.2} M rec/s)  {:.2}x vs node walk",
        t_flat.as_secs_f64() * 1e3,
        mrps(t_flat),
        t_node.as_secs_f64() / t_flat.as_secs_f64().max(1e-9)
    );
    println!(
        "  flat record-parallel : {:7.1} ms  ({:.2} M rec/s)",
        t_rec.as_secs_f64() * 1e3,
        mrps(t_rec)
    );
    println!(
        "  flat tree-parallel   : {:7.1} ms  ({:.2} M rec/s)",
        t_tree.as_secs_f64() * 1e3,
        mrps(t_tree)
    );
    println!(
        "  compiled bytecode    : {:7.1} ms  ({:.2} M rec/s)  {:.2}x vs flat blocked",
        t_comp.as_secs_f64() * 1e3,
        mrps(t_comp),
        t_flat.as_secs_f64() / t_comp.as_secs_f64().max(1e-9)
    );

    // --- Accelerator model, scaled to a 10M-record batch x 500 trees. --
    let measured = InferenceWorkload::measure(&model, &data);
    let per_tree = measured.total_path_len as f64 / model.num_trees() as f64;
    let w = InferenceWorkload {
        n_records: 10_000_000,
        record_bytes: measured.record_bytes,
        num_trees: 500,
        total_path_len: (per_tree * 500.0 * (10_000_000.0 / 60_000.0)) as u64,
        max_depth: measured.max_depth,
    };
    let bw = BandwidthModel::new(booster_dram::DramConfig::default());
    let booster_cfg = BoosterConfig::default();
    let b = booster_inference(&booster_cfg, &bw, &w);
    let c = ideal_inference(
        &IdealMachineConfig::ideal_cpu(),
        &WorkModel::default(),
        &bw,
        &w,
        "Ideal 32-core",
    );
    let replicas = booster_cfg.total_bus() as usize / w.num_trees;
    println!(
        "\nmodeled batch inference (10M records x 500 trees, {} ensemble replicas on \
         {} BUs):",
        replicas,
        replicas * w.num_trees
    );
    println!(
        "  Ideal 32-core : {:8.1} ms  ({:.1} M records/s)",
        c.total() * 1e3,
        w.n_records as f64 / c.total() / 1e6
    );
    println!(
        "  Booster       : {:8.1} ms  ({:.1} M records/s)  -> {:.1}x",
        b.total() * 1e3,
        w.n_records as f64 / b.total() / 1e6,
        c.total() / b.total()
    );
}
