//! Flight-delay prediction — one of the paper's motivating tabular
//! workloads (Table III). Trains on the synthetic Flight equivalent,
//! evaluates on held-out data, and then asks the accelerator models what
//! this training job would cost on Booster versus the ideal baselines.
//!
//! Run with: `cargo run --release --example flight_delay`

use booster_repro::datagen::{generate, Benchmark};
use booster_repro::gbdt::metrics;
use booster_repro::gbdt::prelude::*;
use booster_repro::sim::{
    speedup_over, BandwidthModel, BoosterConfig, BoosterSim, HostModel, IdealSim,
};

fn main() {
    // --- Generate train/test splits of the Flight-like dataset. --------
    let train_raw = generate(Benchmark::Flight, 60_000, 11);
    let test_raw = generate(Benchmark::Flight, 20_000, 99);
    let train_binned = BinnedDataset::from_dataset(&train_raw);
    let mirror = ColumnarMirror::from_binned(&train_binned);

    let cfg = TrainConfig {
        num_trees: 80,
        max_depth: 6,
        learning_rate: 0.15,
        objective: Objective::Logistic,
        collect_phases: true,
        ..Default::default()
    };
    let (model, report) = train(&train_binned, &mirror, &cfg);

    // --- Evaluate out of sample (raw records through the stored bins). -
    let mut preds = Vec::with_capacity(test_raw.num_records());
    let mut record = Vec::new();
    for r in 0..test_raw.num_records() {
        record.clear();
        for f in 0..test_raw.num_fields() {
            record.push(test_raw.value(r, f));
        }
        preds.push(model.predict_raw(&record));
    }
    let labels: Vec<f64> = test_raw.labels().iter().map(|&y| f64::from(y)).collect();
    println!(
        "flight delay: test accuracy {:.3}, AUC {:.3} ({} trees, mean leaf depth {:.2})",
        metrics::accuracy(&preds, &labels, 0.5),
        metrics::auc(&preds, &labels),
        model.num_trees(),
        model.mean_leaf_depth()
    );

    // --- What would this training run cost on the accelerator? ---------
    // Scale the phase log to the paper's 10M-record Flight dataset.
    let log = report.phase_log.unwrap().scaled(10_000_000.0 / 60_000.0);
    let bw = BandwidthModel::new(booster_dram::DramConfig::default());
    let host = HostModel::default();
    let booster = BoosterSim::new(BoosterConfig::default(), &bw);
    let (b_run, diag) = booster.training_time(&log, &host);
    let cpu = IdealSim::cpu(&bw).training_time(&log, &host);
    let gpu = IdealSim::gpu(&bw).training_time(&log, &host);

    println!("\nmodeled training time at 10M records, {} trees:", model.num_trees());
    println!("  Ideal 32-core : {:8.2} s", cpu.total());
    println!("  Ideal GPU     : {:8.2} s ({:.2}x)", gpu.total(), speedup_over(&cpu, &gpu));
    println!("  Booster       : {:8.2} s ({:.2}x)", b_run.total(), speedup_over(&cpu, &b_run));
    println!(
        "  (group-by-field mapping: {} SRAMs/copy, serialization {}, {:.0} replicas)",
        diag.mapping.srams_used(),
        diag.mapping.max_fields_per_sram,
        diag.replication
    );
}
