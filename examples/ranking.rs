//! LambdaMART ranking end-to-end: query-grouped training with pairwise
//! λ-gradients → early stopping on validation NDCG@10 → `.bstr` round
//! trip → compiled inference → per-query ranking quality check.
//!
//! The workload is `datagen`'s LETOR-style synthetic: queries of 4-20
//! documents with graded relevance 0-3. The run demonstrates:
//!
//! 1. NDCG@10 of the trained ranker beats the untrained (all-zero
//!    margins) baseline by a wide margin on held-out queries;
//! 2. early stopping picks the best round under `EvalMetric::Ndcg`
//!    (a *maximizing* metric — the early-stopping engine handles both
//!    directions through one comparison);
//! 3. the ranker survives serialize → flatten → compile bit for bit,
//!    so offline ranking and production scoring order identically.
//!
//! Run with: `cargo run --release --example ranking`

use booster_repro::datagen::generate_ranking;
use booster_repro::gbdt::metrics::ndcg_at_k;
use booster_repro::gbdt::prelude::*;

fn main() {
    // --- 1. Query-grouped train and validation sets. --------------------
    // Separate seeds give disjoint query sets; the eval side reuses the
    // training binnings so split thresholds mean the same thing.
    let (train_ds, train_groups) = generate_ranking(600, 3);
    let (eval_ds, eval_groups) = generate_ranking(150, 4);
    let mut data = BinnedDataset::from_dataset(&train_ds);
    data.set_query_groups(train_groups);
    let mirror = ColumnarMirror::from_binned(&data);
    let mut eval = BinnedDataset::from_dataset_with_binnings(&eval_ds, data.binnings().to_vec());
    eval.set_query_groups(eval_groups.clone());
    println!(
        "ranking data: {} train docs in {} queries / {} eval docs in {} queries",
        data.num_records(),
        data.query_groups().unwrap().len(),
        eval.num_records(),
        eval_groups.len()
    );

    // --- 2. LambdaRank training, early-stopped on eval NDCG@10. ---------
    let budget = 120;
    let cfg = TrainConfig {
        num_trees: budget,
        max_depth: 4,
        learning_rate: 0.15,
        objective: Objective::LambdaRank,
        early_stopping: Some(EarlyStopping {
            metric: EvalMetric::Ndcg { k: 10 },
            patience: 15,
            min_delta: 0.0,
        }),
        ..Default::default()
    };
    let (model, report) =
        grow_forest_with_eval(&data, &mirror, &cfg, &SequentialExec, Some(&EvalSet::new(&eval)));
    let best = report.best_iteration.expect("eval pipeline ran");
    let history = report.eval_history.as_deref().expect("eval history recorded");
    assert_eq!(model.num_trees(), best, "model truncated to its best iteration");
    println!(
        "trained {} of {budget} budgeted trees, best iteration {best} (NDCG is maximizing: {})",
        history.len(),
        EvalMetric::Ndcg { k: 10 }.is_maximizing()
    );

    // --- 3. NDCG@10 beats the untrained baseline on held-out queries. ---
    let labels: Vec<f64> = eval.labels().iter().map(|&y| f64::from(y)).collect();
    let zero = vec![0.0f64; eval.num_records()];
    let base_ndcg = ndcg_at_k(&zero, &labels, &eval_groups, 10);
    let margins: Vec<f64> =
        (0..eval.num_records()).map(|r| model.margin_binned(&eval, r)).collect();
    let trained_ndcg = ndcg_at_k(&margins, &labels, &eval_groups, 10);
    println!(
        "eval NDCG@10: untrained {:.4} -> trained {:.4} (best-round history {:.4})",
        base_ndcg,
        trained_ndcg,
        history[best - 1]
    );
    assert!(
        trained_ndcg > base_ndcg + 0.05,
        "λ-gradients must lift NDCG well above the unranked baseline"
    );

    // --- 4. Serialize and compile: production scores rank identically. --
    let bytes = model_to_bytes(&model);
    let restored = model_from_bytes(&bytes).expect("v2 bytes parse");
    assert_eq!(restored.objective.name(), "lambdarank");
    let flat = FlatEnsemble::from_model(&restored).expect("trees lower");
    let compiled = compile(&flat, &CompileOptions::default()).expect("program compiles");
    let mut compiled_scores = vec![0.0f64; eval.num_records()];
    compiled.score_into(&eval, &mut compiled_scores);
    for (r, (walk, prod)) in margins.iter().zip(&compiled_scores).enumerate() {
        assert_eq!(walk.to_bits(), prod.to_bits(), "record {r}: compiled score drifted");
    }
    let prod_ndcg = ndcg_at_k(&compiled_scores, &labels, &eval_groups, 10);
    assert_eq!(prod_ndcg.to_bits(), trained_ndcg.to_bits());
    println!(
        "bstr round trip ({} bytes) + compiled program: scores bit-identical, NDCG@10 {:.4}",
        bytes.len(),
        prod_ndcg
    );
    println!("ok");
}
