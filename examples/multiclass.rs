//! Multiclass softmax end-to-end: K trees per boosting round →
//! validation-driven early stopping at a round boundary → `.bstr`
//! round trip → compiled K-output inference → multi-output serving.
//!
//! The workload is `datagen`'s 5-class Gaussian-blob benchmark; every
//! stage asserts the invariants the multi-output engine guarantees:
//!
//! 1. training lays trees round-major (`trees.len() % K == 0`) and the
//!    argmax accuracy beats the 1/K chance baseline by a wide margin;
//! 2. early stopping truncates at a whole round, never mid-round;
//! 3. serialize → deserialize → flatten → compile all preserve the K
//!    per-class probabilities bit for bit;
//! 4. the serving scheduler returns all K probabilities per request,
//!    bit-identical to offline scoring.
//!
//! Run with: `cargo run --release --example multiclass`

use std::sync::Arc;

use booster_repro::datagen::{generate_multiclass, split_dataset};
use booster_repro::gbdt::metrics::{multi_logloss, multiclass_accuracy};
use booster_repro::gbdt::prelude::*;
use booster_repro::serve::{ModelRegistry, ResponseSlot, ServeConfig, Server};

const K: usize = 5;

fn main() {
    // --- 1. Five Gaussian blobs, 80/20 split, training-set binnings. ----
    let ds = generate_multiclass(10_000, K as u32, 11);
    let (train_ds, eval_ds) = split_dataset(&ds, 0.2, 11);
    let data = BinnedDataset::from_dataset(&train_ds);
    let mirror = ColumnarMirror::from_binned(&data);
    let eval = BinnedDataset::from_dataset_with_binnings(&eval_ds, data.binnings().to_vec());
    println!(
        "multiclass blobs: {} train / {} eval records, {} classes",
        data.num_records(),
        eval.num_records(),
        K
    );

    // --- 2. Softmax training with early stopping on eval logloss. -------
    let budget = 40; // rounds; the tree budget is K x this
    let cfg = TrainConfig {
        num_trees: budget,
        max_depth: 4,
        learning_rate: 0.3,
        objective: Objective::Softmax { num_class: K as u32 },
        early_stopping: Some(EarlyStopping {
            metric: EvalMetric::MultiLogloss,
            patience: 5,
            min_delta: 0.0,
        }),
        ..Default::default()
    };
    let (model, report) =
        grow_forest_with_eval(&data, &mirror, &cfg, &SequentialExec, Some(&EvalSet::new(&eval)));
    let best = report.best_iteration.expect("eval pipeline ran");
    assert_eq!(model.num_outputs as usize, K);
    assert_eq!(model.trees.len(), best, "model truncated to the best round");
    assert_eq!(model.trees.len() % K, 0, "truncation lands on a K-tree round boundary");
    let history = report.eval_history.as_deref().expect("eval history recorded");
    println!(
        "trained {} rounds of {budget} budgeted ({} trees, {K} per round), best round {}",
        history.len(),
        model.trees.len(),
        best / K
    );
    println!("eval multi-logloss: first {:.4} -> best {:.4}", history[0], history[best / K - 1]);

    // --- 3. Argmax accuracy far above the 1/K chance baseline. ----------
    // `multi_logloss` takes *raw* margins (it applies the softmax link
    // itself); argmax accuracy is link-invariant so either works there.
    let eval_labels: Vec<f64> = eval.labels().iter().map(|&y| f64::from(y)).collect();
    let mut margins = vec![0.0f64; eval.num_records() * K];
    for r in 0..eval.num_records() {
        model.margin_outputs(&eval, r, &mut margins[r * K..(r + 1) * K]);
    }
    let acc = multiclass_accuracy(&margins, &eval_labels, K);
    let mll = multi_logloss(&margins, &eval_labels, K);
    assert_eq!(
        mll.to_bits(),
        history[best / K - 1].to_bits(),
        "offline rescoring reproduces the eval history bit-exactly"
    );
    println!(
        "eval accuracy {:.4} (chance baseline {:.2}), multi-logloss {:.4}",
        acc,
        1.0 / K as f64,
        mll
    );
    assert!(acc > 0.8, "blobs are separable; accuracy {acc} is too low");

    // --- 4. Serialize round trip preserves every class probability. -----
    let bytes = model_to_bytes(&model);
    let restored = model_from_bytes(&bytes).expect("v2 bytes parse");
    assert_eq!(restored.num_outputs as usize, K);
    println!("bstr round trip: {} bytes, objective '{}'", bytes.len(), restored.objective.name());

    // --- 5. Flat + compiled engines agree bitwise on all K outputs. -----
    let flat = FlatEnsemble::from_model(&restored).expect("trees lower");
    let compiled = compile(&flat, &CompileOptions::default()).expect("program compiles");
    let flat_out = flat.predict_batch_outputs(&eval);
    let mut compiled_out = vec![0.0; eval.num_records() * K];
    compiled.score_outputs_into(&eval, &mut compiled_out);
    let mut walk = vec![0.0; K];
    for (r, (row_f, row_c)) in flat_out.chunks(K).zip(compiled_out.chunks(K)).enumerate() {
        model.predict_outputs(&eval, r, &mut walk);
        for ((f, c), m) in row_f.iter().zip(row_c).zip(&walk) {
            assert_eq!(f.to_bits(), c.to_bits(), "flat vs compiled, record {r}");
            assert_eq!(f.to_bits(), m.to_bits(), "flat vs model walk, record {r}");
        }
    }
    println!("flat and compiled K-output scoring are bit-identical to the tree walk");

    // --- 6. Serve it: every response carries all K probabilities. -------
    let registry = Arc::new(ModelRegistry::new());
    registry.register_bytes(&bytes).expect("multiclass model registers");
    let server = Server::start(Arc::clone(&registry), ServeConfig::default()).expect("starts");
    let handle = server.handle();
    let slot = ResponseSlot::new();
    let mut served = 0usize;
    for r in (0..eval_ds.num_records()).step_by(97) {
        let rec: Arc<[RawValue]> = (0..eval_ds.num_fields()).map(|f| eval_ds.value(r, f)).collect();
        let resp = handle.score_with(&slot, Arc::clone(&rec), None).expect("scored");
        assert_eq!(resp.outputs.len(), K, "one probability per class");
        let offline = restored.predict_raw_outputs(&rec);
        for (got, want) in resp.outputs.iter().zip(&offline) {
            assert_eq!(got.to_bits(), want.to_bits(), "served == offline, record {r}");
        }
        let sum: f64 = resp.outputs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "softmax outputs form a distribution");
        served += 1;
    }
    handle.drain();
    server.shutdown();
    println!("served {served} multiclass requests, all {K}-way distributions bit-exact");
    println!("ok");
}
