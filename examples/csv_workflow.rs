//! Full production workflow: ingest a CSV table, train, persist the
//! model in the binary format, reload it and serve predictions —
//! everything a downstream user does with a tabular dataset.
//!
//! Run with: `cargo run --release --example csv_workflow`

use booster_repro::gbdt::io::{parse_csv, to_csv, CsvOptions};
use booster_repro::gbdt::prelude::*;
use booster_repro::gbdt::serialize::{model_from_bytes, model_to_bytes};

fn main() {
    // --- 1. A CSV export, as it would come out of a spreadsheet/DB. ----
    let mut csv = String::from("churned,tenure_months,plan,monthly_spend,region\n");
    let mut state = 7u64;
    let mut rng = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f32) / (u32::MAX >> 1) as f32
    };
    let plans = ["basic", "plus", "pro"];
    let regions = ["north", "south", "east", "west"];
    for _ in 0..12_000 {
        let tenure = (rng() * 72.0).floor();
        let plan = plans[(rng() * 3.0) as usize % 3];
        let spend = 10.0 + rng() * 90.0;
        let region = regions[(rng() * 4.0) as usize % 4];
        // Ground truth: short-tenure basic-plan customers churn.
        let churn_p = if tenure < 12.0 && plan == "basic" { 0.8 } else { 0.1 };
        let churned = u8::from(rng() < churn_p);
        // 2% of rows are missing the spend column.
        let spend_cell = if rng() < 0.02 { String::new() } else { format!("{spend:.2}") };
        csv.push_str(&format!("{churned},{tenure},{plan},{spend_cell},{region}\n"));
    }

    // --- 2. Ingest: schema inference + category mapping. ----------------
    let (table, category_names) = parse_csv(&csv, &CsvOptions::default()).unwrap();
    println!(
        "ingested {} records x {} fields ({} categorical)",
        table.num_records(),
        table.num_fields(),
        table.schema().num_categorical()
    );
    println!("plan categories: {:?}", category_names[1]);

    // --- 3. Train. -------------------------------------------------------
    let binned = BinnedDataset::from_dataset(&table);
    let mirror = ColumnarMirror::from_binned(&binned);
    let cfg = TrainConfig {
        num_trees: 60,
        max_depth: 4,
        learning_rate: 0.2,
        objective: Objective::Logistic,
        subsample: 0.8, // stochastic GB
        seed: 42,
        ..Default::default()
    };
    let (model, _) = train(&binned, &mirror, &cfg);
    let importance = model.feature_importance();
    println!("feature importance (split counts): {importance:?}");

    // --- 4. Persist + reload. --------------------------------------------
    let bytes = model_to_bytes(&model);
    println!("serialized model: {} KB", bytes.len() / 1024);
    let served = model_from_bytes(&bytes).unwrap();

    // --- 5. Serve predictions on raw records. ----------------------------
    // `Predictor` lowers the model to the flat tree-table engine once,
    // precomputes the absent bins, and reuses its scratch buffers — no
    // per-request heap allocation, unlike `Model::predict_raw`.
    let mut predictor = Predictor::from_model(&served).expect("trees fit the table encoding");
    let plan_idx = |name: &str| category_names[1].iter().position(|p| p == name).unwrap() as u32;
    let risky = predictor.predict_one(&[
        RawValue::Num(3.0), // 3 months tenure
        RawValue::Cat(plan_idx("basic")),
        RawValue::Missing, // spend unknown
        RawValue::Cat(0),
    ]);
    let loyal = predictor.predict_one(&[
        RawValue::Num(60.0),
        RawValue::Cat(plan_idx("pro")),
        RawValue::Num(95.0),
        RawValue::Cat(2),
    ]);
    assert_eq!(
        risky.to_bits(),
        served
            .predict_raw(&[
                RawValue::Num(3.0),
                RawValue::Cat(plan_idx("basic")),
                RawValue::Missing,
                RawValue::Cat(0),
            ])
            .to_bits(),
        "flat serving path must match the node walk exactly"
    );
    println!("P(churn | 3mo, basic, spend unknown) = {risky:.3}");
    println!("P(churn | 60mo, pro, $95)            = {loyal:.3}");
    assert!(risky > 0.5 && loyal < 0.2);

    // --- 6. Round-trip the dataset itself (for external tools). ----------
    let exported = to_csv(&table, Some(&category_names));
    let (reimported, _) = parse_csv(&exported, &CsvOptions::default()).unwrap();
    assert_eq!(reimported.num_records(), table.num_records());
    println!("dataset CSV round-trip ok ({} bytes)", exported.len());
}
