//! Validation-driven early stopping on a noisy synthetic split.
//!
//! Trains on a Higgs-like table (noisy nonlinear labels — exactly the
//! regime where boosting overfits), holding out a validation set that
//! is scored through the flat-ensemble engine after every tree. The
//! run demonstrates:
//!
//! 1. `best_iteration < num_trees`: the eval metric bottoms out well
//!    before the tree budget, and the model is truncated there;
//! 2. **prefix stability**: the early-stopped model's trees are
//!    bit-identical to the first `best_iteration` trees of an
//!    unstopped run (stopping only truncates — it never changes what
//!    was learned);
//! 3. the truncated model generalizes at least as well as the full
//!    ensemble on held-out data.
//!
//! Run with: `cargo run --release --example early_stopping`

use booster_repro::datagen::{generate_binned_split, Benchmark};
use booster_repro::gbdt::gradients::Objective;
use booster_repro::gbdt::grow::grow_forest_with_eval;
use booster_repro::gbdt::metrics::{self, EvalMetric};
use booster_repro::gbdt::train::{train, EarlyStopping, EvalSet, SequentialExec, TrainConfig};

fn main() {
    // --- 1. A noisy datagen split: 75% train / 25% validation. ---------
    let (train_set, mirror, eval_set) = generate_binned_split(Benchmark::Higgs, 8_000, 42, 0.25);
    println!(
        "split: {} train / {} validation records x {} fields",
        train_set.num_records(),
        eval_set.num_records(),
        train_set.num_fields()
    );

    // --- 2. Train with a generous budget and patience-based stopping. --
    let budget = 160;
    let base_cfg = TrainConfig {
        num_trees: budget,
        max_depth: 5,
        learning_rate: 0.3,
        objective: Objective::Logistic,
        ..Default::default()
    };
    let es_cfg = TrainConfig {
        early_stopping: Some(EarlyStopping {
            metric: EvalMetric::Logloss,
            patience: 12,
            min_delta: 0.0,
        }),
        ..base_cfg.clone()
    };
    let (stopped, report) = grow_forest_with_eval(
        &train_set,
        &mirror,
        &es_cfg,
        &SequentialExec,
        Some(&EvalSet::new(&eval_set)),
    );
    let history = report.eval_history.as_deref().expect("eval history recorded");
    let best = report.best_iteration.expect("best iteration recorded");
    println!(
        "early stopping: trained {} of {budget} budgeted trees, best_iteration = {best}",
        history.len()
    );
    println!(
        "  eval logloss: first {:.4} -> best {:.4} -> last {:.4}",
        history[0],
        history[best - 1],
        history[history.len() - 1]
    );
    assert!(best < budget, "eval metric must bottom out before the budget");
    assert_eq!(stopped.num_trees(), best, "model truncated to its best iteration");

    // --- 3. Prefix stability against an unstopped run. -----------------
    // The deterministic configuration (subsample = 1.0, colsample_* =
    // 1.0, early stopping off) consumes no randomness at all, so the
    // unstopped run grows exactly the trees the stopped run grew —
    // stopping can only truncate the sequence, bit for bit.
    let (full, _) = train(&train_set, &mirror, &base_cfg);
    assert_eq!(full.num_trees(), budget);
    assert_eq!(
        stopped.trees[..],
        full.trees[..best],
        "early-stopped trees must be a bit-exact prefix of the full run"
    );
    println!("prefix check: {} stopped trees == full run's first {best} trees, bit-exact", best);

    // --- 4. Batch scoring agrees with the incremental pipeline. ---------
    let labels: Vec<f64> = eval_set.labels().iter().map(|&y| f64::from(y)).collect();
    let eval_auc = |m: &booster_repro::gbdt::predict::Model| {
        metrics::auc(&m.predict_batch(&eval_set), &labels)
    };
    let eval_ll = |m: &booster_repro::gbdt::predict::Model| {
        metrics::logloss(&m.predict_batch(&eval_set), &labels)
    };
    println!(
        "validation: stopped ({} trees) logloss {:.4} auc {:.4} | full ({} trees) logloss {:.4} auc {:.4}",
        stopped.num_trees(),
        eval_ll(&stopped),
        eval_auc(&stopped),
        full.num_trees(),
        eval_ll(&full),
        eval_auc(&full)
    );
    // Guaranteed invariant: re-scoring the truncated model from scratch
    // reproduces the per-tree pipeline's best history entry bit for bit
    // (same fold order, exact f64 leaf weights in the flat scorer). The
    // full-vs-stopped comparison above is informational — the optimum is
    // over evaluated prefixes, which on this seed favors the stopped
    // model, but that is data, not an invariant.
    assert_eq!(
        eval_ll(&stopped).to_bits(),
        history[best - 1].to_bits(),
        "batch rescoring must reproduce the incremental eval history bit-exactly"
    );

    // --- 5. The same pipeline with sampling enabled. --------------------
    let stochastic_cfg = TrainConfig {
        subsample: 0.8,
        colsample_bytree: 0.8,
        colsample_bynode: 0.8,
        seed: 7,
        ..es_cfg
    };
    let (sto, sto_report) = grow_forest_with_eval(
        &train_set,
        &mirror,
        &stochastic_cfg,
        &SequentialExec,
        Some(&EvalSet::new(&eval_set)),
    );
    println!(
        "stochastic (subsample 0.8, colsample 0.8x0.8): {} trees kept, eval logloss {:.4}",
        sto.num_trees(),
        eval_ll(&sto)
    );
    assert_eq!(sto.num_trees(), sto_report.best_iteration.unwrap());
    println!("ok");
}
