//! Fault-injection tests for the distributed transport.
//!
//! The contract under fire: a sick cluster surfaces as a **typed**
//! [`DistError`] — never a panic, never an unbounded hang. Receives are
//! bounded by the transport's read timeout, every reply's sequence echo
//! is verified (dropped and duplicated frames become protocol errors),
//! and workers answer undecodable or out-of-range requests with typed
//! error frames instead of dying.

use std::io::Write;
use std::net::TcpListener;
use std::time::{Duration, Instant};

use booster_repro::datagen::{default_objective, generate_binned, Benchmark};
use booster_repro::dist::{
    train_distributed, ChannelComm, DistError, FaultKind, FaultyComm, ShardPlan, TcpComm,
    WorkerState,
};
use booster_repro::gbdt::columnar::ColumnarMirror;
use booster_repro::gbdt::preprocess::BinnedDataset;
use booster_repro::gbdt::train::TrainConfig;
use booster_repro::serve::frame::{read_frame_limit, write_frame, DIST_MAX_FRAME_BYTES};

/// Short timeout so drop-faults resolve quickly; generous enough that a
/// healthy in-process worker never trips it.
const TIMEOUT: Duration = Duration::from_millis(500);

/// Hard ceiling on any faulted run — the "never hangs" assertion.
const DEADLINE: Duration = Duration::from_secs(30);

fn small_case() -> (BinnedDataset, ColumnarMirror, TrainConfig) {
    let (data, mirror) = generate_binned(Benchmark::Iot, 80, 9);
    let cfg = TrainConfig {
        num_trees: 2,
        max_depth: 3,
        objective: default_objective(Benchmark::Iot),
        ..Default::default()
    };
    (data, mirror, cfg)
}

/// Run one faulted distributed training over in-process channels.
fn run_faulted(at_frame: u64, kind: FaultKind) -> Result<(), DistError> {
    let (data, mirror, cfg) = small_case();
    let plan = ShardPlan::even(data.num_records(), 2);
    let shards = plan.shard(&data).expect("plan covers the dataset");
    let comm = FaultyComm::new(ChannelComm::spawn(shards, TIMEOUT), at_frame, kind);
    let start = Instant::now();
    let out = train_distributed(&data, &mirror, &cfg, comm, &plan).map(|_| ());
    assert!(start.elapsed() < DEADLINE, "faulted run must stay bounded");
    out
}

#[test]
fn dropped_frame_times_out_with_a_typed_error() {
    // Frame 2 is the first Step-1 request (0 and 1 are the two inits):
    // the worker never sees it, so the coordinator's receive times out.
    let err = run_faulted(2, FaultKind::DropFrame).unwrap_err();
    assert!(matches!(err, DistError::Timeout { .. }), "expected Timeout, got {err:?}");
}

#[test]
fn dropped_init_times_out_too() {
    let err = run_faulted(0, FaultKind::DropFrame).unwrap_err();
    assert!(matches!(err, DistError::Timeout { worker: 0 }), "expected Timeout, got {err:?}");
}

#[test]
fn duplicated_frame_desynchronises_the_sequence_echo() {
    // The duplicate's second reply sits in the channel; the next
    // exchange with that worker reads it and sees a stale echo.
    let err = run_faulted(2, FaultKind::Duplicate).unwrap_err();
    assert!(matches!(err, DistError::Protocol(_)), "expected Protocol, got {err:?}");
}

#[test]
fn truncated_frame_is_rejected_by_the_worker() {
    // A 3-byte Init stub: the worker cannot decode it and answers with
    // a typed error frame, which surfaces as Remote.
    let err = run_faulted(0, FaultKind::Truncate(3)).unwrap_err();
    assert!(matches!(err, DistError::Remote { worker: 0, .. }), "expected Remote, got {err:?}");
}

#[test]
fn corrupted_op_byte_is_rejected_by_the_worker() {
    let err = run_faulted(1, FaultKind::XorByte(0)).unwrap_err();
    assert!(matches!(err, DistError::Remote { worker: 1, .. }), "expected Remote, got {err:?}");
}

/// The sweep: XOR-corrupt one byte at seeded (frame, offset) points all
/// over the session. Any outcome is acceptable *except* a panic or a
/// hang; errors must be typed. (An unlucky flip can also yield a
/// different-but-valid frame — the run then completes; the identity
/// tests are what guard the healthy path's bits.)
#[test]
fn seeded_corruption_sweep_never_panics_or_hangs() {
    for point in 0u64..12 {
        let at_frame = point * 3;
        let offset = (point as usize) * 7 + 1;
        let _ = run_faulted(at_frame, FaultKind::XorByte(offset));
        let _ = run_faulted(at_frame, FaultKind::Truncate(point as usize));
    }
}

/// A TCP worker that serves `max_frames` requests and then drops the
/// connection — a worker dying mid-level.
fn flaky_tcp_worker(shard: BinnedDataset, listener: TcpListener, max_frames: usize) {
    let (stream, _) = listener.accept().expect("accept");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = std::io::BufWriter::new(stream);
    let mut state = WorkerState::new(shard);
    for _ in 0..max_frames {
        let Ok(Some(payload)) = read_frame_limit(&mut reader, DIST_MAX_FRAME_BYTES) else {
            return;
        };
        match state.handle_payload(&payload) {
            Some(reply) => {
                if write_frame(&mut writer, &reply).and_then(|()| writer.flush()).is_err() {
                    return;
                }
            }
            None => return,
        }
    }
    // Drop the socket mid-session.
}

#[test]
fn tcp_worker_disconnect_mid_level_is_a_typed_error() {
    let (data, mirror, cfg) = small_case();
    let plan = ShardPlan::even(data.num_records(), 2);
    let shards = plan.shard(&data).expect("plan covers the dataset");
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for (k, shard) in shards.into_iter().enumerate() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        addrs.push(listener.local_addr().expect("addr"));
        // Worker 1 dies after 3 frames — init plus a level's worth.
        let max = if k == 1 { 3 } else { usize::MAX };
        handles.push(std::thread::spawn(move || flaky_tcp_worker(shard, listener, max)));
    }
    let comm = TcpComm::connect(&addrs, TIMEOUT).expect("connect");
    let start = Instant::now();
    let err = train_distributed(&data, &mirror, &cfg, comm, &plan).unwrap_err();
    assert!(start.elapsed() < DEADLINE, "disconnect must resolve within the timeout");
    assert!(
        matches!(
            err,
            DistError::Disconnected { worker: 1 }
                | DistError::Timeout { worker: 1 }
                | DistError::Io(_)
        ),
        "expected a typed transport error for worker 1, got {err:?}"
    );
    for h in handles {
        h.join().expect("worker thread");
    }
}
