//! Property-based tests (proptest) on the core data structures and
//! invariants, spanning the gbdt and dram crates.

use proptest::prelude::*;

use booster_repro::dram::{run_trace, DramConfig, Request};
use booster_repro::gbdt::binning::BinBoundaries;
use booster_repro::gbdt::columnar::ColumnRef;
use booster_repro::gbdt::dataset::{Dataset, RawValue};
use booster_repro::gbdt::gradients::GradPair;
use booster_repro::gbdt::histogram::NodeHistogram;
use booster_repro::gbdt::partition::partition_rows;
use booster_repro::gbdt::phases::{column_blocks, distinct_blocks, row_major_blocks};
use booster_repro::gbdt::preprocess::BinnedDataset;
use booster_repro::gbdt::schema::{DatasetSchema, FieldSchema};
use booster_repro::gbdt::split::{goes_left, SplitRule};

// ---------------------------------------------------------------- binning

proptest! {
    #[test]
    fn binning_is_monotone_and_total(mut values in prop::collection::vec(-1e6f32..1e6, 2..400), bins in 2u16..64) {
        let b = BinBoundaries::from_values(&mut values, bins);
        prop_assert!(b.num_bins() >= 1);
        prop_assert!(b.num_bins() <= u32::from(bins));
        // Monotone: larger values never map to smaller bins.
        let mut sorted = values.clone();
        sorted.sort_by(|a, c| a.partial_cmp(c).unwrap());
        let mut prev = 0u32;
        for v in sorted {
            let bin = b.bin_of(v);
            prop_assert!(bin >= prev);
            prop_assert!(bin < b.num_bins());
            prev = bin;
        }
        // Boundaries strictly increasing.
        for w in b.uppers().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn every_value_lands_in_a_bin_containing_it(mut values in prop::collection::vec(-1e3f32..1e3, 2..200)) {
        let b = BinBoundaries::from_values(&mut values, 16);
        for &v in &values {
            let bin = b.bin_of(v);
            // v must be <= its bin's upper boundary (if bounded) and
            // greater than the previous boundary.
            if let Some(up) = b.upper(bin) {
                prop_assert!(v <= up);
            }
            if bin > 0 {
                let below = b.upper(bin - 1).unwrap();
                prop_assert!(v > below);
            }
        }
    }
}

// -------------------------------------------------------------- histograms

fn arb_dataset_and_grads() -> impl Strategy<Value = (BinnedDataset, Vec<GradPair>, Vec<u32>)> {
    (2usize..6, 20usize..150).prop_flat_map(|(nf, n)| {
        let schema = DatasetSchema::new(
            (0..nf)
                .map(|i| {
                    if i % 2 == 0 {
                        FieldSchema::numeric_with_bins(format!("n{i}"), 8)
                    } else {
                        FieldSchema::categorical(format!("c{i}"), 4)
                    }
                })
                .collect(),
        );
        (
            Just(schema),
            prop::collection::vec(prop::collection::vec(any::<u8>(), nf), n..=n),
            prop::collection::vec((-10.0f64..10.0, 0.1f64..2.0), n..=n),
            prop::collection::vec(any::<bool>(), n..=n),
        )
            .prop_map(move |(schema, raw_rows, grads, mask)| {
                let mut ds = Dataset::new(schema);
                let mut row = Vec::with_capacity(nf);
                for cells in &raw_rows {
                    row.clear();
                    for (f, &c) in cells.iter().enumerate() {
                        if f % 2 == 0 {
                            row.push(RawValue::Num(f32::from(c)));
                        } else {
                            row.push(RawValue::Cat(u32::from(c % 4)));
                        }
                    }
                    ds.push_record(&row, 0.0);
                }
                let binned = BinnedDataset::from_dataset(&ds);
                let grads: Vec<GradPair> =
                    grads.into_iter().map(|(g, h)| GradPair::new(g, h)).collect();
                let subset: Vec<u32> =
                    mask.iter().enumerate().filter(|(_, &m)| m).map(|(i, _)| i as u32).collect();
                (binned, grads, subset)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_subtraction_equals_direct((data, grads, subset) in arb_dataset_and_grads()) {
        let n = data.num_records() as u32;
        let all: Vec<u32> = (0..n).collect();
        let rest: Vec<u32> = all.iter().copied().filter(|r| !subset.contains(r)).collect();

        let mut parent = NodeHistogram::zeroed(&data);
        parent.bin_records(&data, &all, &grads);
        let mut small = NodeHistogram::zeroed(&data);
        small.bin_records(&data, &subset, &grads);
        let derived = NodeHistogram::subtract_from(&parent, &small);
        let mut direct = NodeHistogram::zeroed(&data);
        direct.bin_records(&data, &rest, &grads);

        prop_assert_eq!(derived.total_count(), direct.total_count());
        for f in 0..data.num_fields() {
            for (a, b) in derived.field(f).iter().zip(direct.field(f)) {
                prop_assert_eq!(a.count, b.count);
                prop_assert!((a.grad.g - b.grad.g).abs() < 1e-6);
                prop_assert!((a.grad.h - b.grad.h).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn histogram_field_sums_equal_totals((data, grads, subset) in arb_dataset_and_grads()) {
        let mut h = NodeHistogram::zeroed(&data);
        h.bin_records(&data, &subset, &grads);
        for f in 0..data.num_fields() {
            let count: u64 = h.field(f).iter().map(|b| b.count).sum();
            prop_assert_eq!(count, subset.len() as u64, "field {} count", f);
            let g: f64 = h.field(f).iter().map(|b| b.grad.g).sum();
            prop_assert!((g - h.total().g).abs() < 1e-6);
        }
    }
}

// ------------------------------------------------------------- partitioning

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn partition_is_a_stable_disjoint_cover(
        column in prop::collection::vec(0u32..10, 10..200),
        threshold in 0u32..10,
        default_left in any::<bool>(),
    ) {
        let rows: Vec<u32> = (0..column.len() as u32).collect();
        let rule = SplitRule::Numeric { threshold_bin: threshold };
        let absent = 9u32;
        let (l, r) = partition_rows(&rows, ColumnRef::Wide(&column), rule, default_left, absent);
        prop_assert_eq!(l.len() + r.len(), rows.len());
        // Stable: both sides sorted.
        prop_assert!(l.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(r.windows(2).all(|w| w[0] < w[1]));
        // Routing agrees with goes_left.
        for &x in &l {
            prop_assert!(goes_left(rule, default_left, column[x as usize], absent));
        }
        for &x in &r {
            prop_assert!(!goes_left(rule, default_left, column[x as usize], absent));
        }
    }

    #[test]
    fn block_counting_bounds(
        mask in prop::collection::vec(any::<bool>(), 1..500),
        record_bytes in 1u32..130,
    ) {
        let rows: Vec<u32> = mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| i as u32)
            .collect();
        let rb = row_major_blocks(&rows, record_bytes);
        let cb = column_blocks(&rows, 1);
        // Never more blocks than records x blocks-per-record; never fewer
        // than the dense minimum.
        let per_record = (record_bytes as usize).div_ceil(64).max(1);
        prop_assert!(rb <= rows.len() * per_record);
        prop_assert!(cb <= rows.len());
        if !rows.is_empty() {
            prop_assert!(rb >= 1);
            prop_assert!(cb >= 1);
            // Lower bound: even perfectly packed, the subset's bytes need
            // this many blocks.
            let min_blocks = (rows.len() * record_bytes as usize) / 64;
            prop_assert!(rb >= min_blocks.max(1));
        }
        // Distinct blocks of a sorted list is monotone in items/block.
        prop_assert!(distinct_blocks(&rows, 64) <= distinct_blocks(&rows, 32));
    }
}

// ----------------------------------------------------------- split finding

/// Exhaustively evaluate every (rule, default) candidate by routing the
/// records directly, and return the best gain — the oracle the scan must
/// match.
fn brute_force_best_gain(data: &BinnedDataset, grads: &[GradPair], lambda: f64) -> Option<f64> {
    use booster_repro::gbdt::preprocess::FieldBinning;
    let n = data.num_records();
    let total: GradPair = (0..n).fold(GradPair::zero(), |acc, r| acc + grads[r]);
    let score = |gp: GradPair| gp.g * gp.g / (gp.h + lambda);
    let parent = score(total);
    let mut best: Option<f64> = None;
    for f in 0..data.num_fields() {
        let binning = &data.binnings()[f];
        let absent = binning.absent_bin();
        let candidates: Vec<SplitRule> = match binning {
            FieldBinning::Numeric(b) => (0..b.num_bins().saturating_sub(1))
                .map(|i| SplitRule::Numeric { threshold_bin: i })
                .collect(),
            FieldBinning::Categorical { categories } => {
                (0..*categories).map(|c| SplitRule::Categorical { category: c }).collect()
            }
        };
        for rule in candidates {
            for default_left in [false, true] {
                let mut left = GradPair::zero();
                let mut left_n = 0u64;
                for (r, g) in grads.iter().enumerate().take(n) {
                    if goes_left(rule, default_left, data.bin(r, f), absent) {
                        left += *g;
                        left_n += 1;
                    }
                }
                let right = total - left;
                let right_n = n as u64 - left_n;
                if left_n == 0 || right_n == 0 || left.h < 1.0 || right.h < 1.0 {
                    continue;
                }
                let gain = 0.5 * (score(left) + score(right) - parent);
                if gain > 0.0 && best.is_none_or(|b| gain > b) {
                    best = Some(gain);
                }
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn split_scan_matches_brute_force((data, grads, _) in arb_dataset_and_grads()) {
        use booster_repro::gbdt::histogram::NodeHistogram;
        use booster_repro::gbdt::split::{find_best_split, SplitParams};
        let rows: Vec<u32> = (0..data.num_records() as u32).collect();
        let mut hist = NodeHistogram::zeroed(&data);
        hist.bin_records(&data, &rows, &grads);
        let params = SplitParams { lambda: 1.0, gamma: 0.0, min_child_weight: 1.0 };
        let (scan, _) = find_best_split(&hist, data.binnings(), &params, None);
        let oracle = brute_force_best_gain(&data, &grads, 1.0);
        match (scan, oracle) {
            (Some(s), Some(o)) => {
                prop_assert!(
                    (s.gain - o).abs() < 1e-6 * (1.0 + o.abs()),
                    "scan gain {} vs brute force {}", s.gain, o
                );
            }
            (None, None) => {}
            (s, o) => prop_assert!(
                false,
                "scan {:?} vs oracle {:?} disagree on existence",
                s.map(|x| x.gain),
                o
            ),
        }
    }
}

// ------------------------------------------------- growth-mode equivalence

/// Replace the generated dataset's all-zero labels with bin-derived ones
/// so trees actually split, and build the columnar mirror.
fn relabel(data: &BinnedDataset) -> (BinnedDataset, booster_repro::gbdt::columnar::ColumnarMirror) {
    use booster_repro::gbdt::columnar::ColumnarMirror;
    let labels: Vec<f32> = (0..data.num_records()).map(|r| (data.bin(r, 0) % 3) as f32).collect();
    let data = BinnedDataset::from_parts(
        data.schema().clone(),
        data.binnings().to_vec(),
        (0..data.num_records()).flat_map(|r| data.row(r).to_vec()).collect(),
        labels,
    );
    let mirror = ColumnarMirror::from_binned(&data);
    (data, mirror)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Vertex-by-vertex and level-by-level growth visit the same vertices
    /// with the same histograms, so both trainers must produce identical
    /// predictions on any dataset.
    #[test]
    fn levelwise_equals_vertexwise((data, grads, _) in arb_dataset_and_grads()) {
        use booster_repro::gbdt::levelwise::train_levelwise;
        use booster_repro::gbdt::train::{train, TrainConfig};
        let _ = grads;
        let (data, mirror) = relabel(&data);
        let cfg = TrainConfig { num_trees: 3, max_depth: 4, ..Default::default() };
        let (mv, _) = train(&data, &mirror, &cfg);
        let (ml, _) = train_levelwise(&data, &mirror, &cfg);
        for r in 0..data.num_records() {
            let pv = mv.predict_binned(&data, r);
            let pl = ml.predict_binned(&data, r);
            prop_assert!((pv - pl).abs() < 1e-9, "record {}: {} vs {}", r, pv, pl);
        }
    }

    /// The parallel backend must produce **bit-identical** models to the
    /// sequential one under every growth strategy: field-parallel Step-1
    /// binning preserves per-bin accumulation order, and Steps 3/5 are
    /// exact per record.
    #[test]
    fn executors_are_bit_identical_for_every_growth_mode(
        (data, grads, _) in arb_dataset_and_grads()
    ) {
        use booster_repro::gbdt::grow::GrowthStrategy;
        use booster_repro::gbdt::parallel::ParallelExec;
        use booster_repro::gbdt::train::{train_with, SequentialExec, TrainConfig};
        let _ = grads;
        let (data, mirror) = relabel(&data);
        for growth in [
            GrowthStrategy::VertexWise,
            GrowthStrategy::LevelWise,
            GrowthStrategy::LeafWise { max_leaves: 6 },
        ] {
            let cfg = TrainConfig { num_trees: 2, max_depth: 3, growth, ..Default::default() };
            let (ms, _) = train_with(&data, &mirror, &cfg, &SequentialExec);
            // A tiny chunk size forces the parallel paths even on these
            // small generated datasets.
            let (mp, _) = train_with(&data, &mirror, &cfg, &ParallelExec { chunk_size: 8 });
            prop_assert_eq!(&ms.trees, &mp.trees, "growth mode {:?}", growth);
            for r in 0..data.num_records() {
                prop_assert_eq!(
                    ms.predict_binned(&data, r).to_bits(),
                    mp.predict_binned(&data, r).to_bits(),
                    "growth mode {:?}, record {}", growth, r
                );
            }
        }
    }

    /// With a leaf budget of `2^max_depth` the best-first order can never
    /// run out of budget before the depth limit, so leaf-wise must grow
    /// exactly the trees level-wise grows (identical predictions, leaf
    /// counts and depths) — the orders differ only in scheduling.
    #[test]
    fn leafwise_with_full_budget_equals_levelwise(
        (data, grads, _) in arb_dataset_and_grads()
    ) {
        use booster_repro::gbdt::grow::GrowthStrategy;
        use booster_repro::gbdt::train::{train_with, SequentialExec, TrainConfig};
        let _ = grads;
        let (data, mirror) = relabel(&data);
        let max_depth = 4u32;
        let base = TrainConfig { num_trees: 3, max_depth, ..Default::default() };
        let level = TrainConfig { growth: GrowthStrategy::LevelWise, ..base.clone() };
        let leaf = TrainConfig {
            growth: GrowthStrategy::LeafWise { max_leaves: 1 << max_depth },
            ..base
        };
        let (ml, _) = train_with(&data, &mirror, &level, &SequentialExec);
        let (mf, _) = train_with(&data, &mirror, &leaf, &SequentialExec);
        for (tl, tf) in ml.trees.iter().zip(&mf.trees) {
            prop_assert_eq!(tl.num_leaves(), tf.num_leaves());
            prop_assert_eq!(tl.depth(), tf.depth());
        }
        for r in 0..data.num_records() {
            prop_assert_eq!(
                ml.predict_binned(&data, r).to_bits(),
                mf.predict_binned(&data, r).to_bits(),
                "record {}", r
            );
        }
    }
}

// --------------------------------------------- stochastic-training identity

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The bit-identity guarantee must survive the stochastic paths:
    /// with row subsampling and per-tree + per-node column sampling all
    /// enabled, every growth strategy still produces **bit-identical**
    /// models *and loss histories* on the sequential and parallel
    /// backends — the masks come from one seeded stream owned by the
    /// engine, never by an executor.
    #[test]
    fn stochastic_training_is_bit_identical_across_executors(
        (data, grads, _) in arb_dataset_and_grads(),
        seed in any::<u64>(),
    ) {
        use booster_repro::gbdt::grow::GrowthStrategy;
        use booster_repro::gbdt::parallel::ParallelExec;
        use booster_repro::gbdt::train::{train_with, SequentialExec, TrainConfig};
        let _ = grads;
        let (data, mirror) = relabel(&data);
        for growth in [
            GrowthStrategy::VertexWise,
            GrowthStrategy::LevelWise,
            GrowthStrategy::LeafWise { max_leaves: 6 },
        ] {
            let cfg = TrainConfig {
                num_trees: 3,
                max_depth: 3,
                subsample: 0.6,
                colsample_bytree: 0.7,
                colsample_bynode: 0.7,
                seed,
                growth,
                ..Default::default()
            };
            let (ms, rs) = train_with(&data, &mirror, &cfg, &SequentialExec);
            // A tiny chunk size forces the parallel paths even on these
            // small generated datasets.
            let (mp, rp) = train_with(&data, &mirror, &cfg, &ParallelExec { chunk_size: 8 });
            prop_assert_eq!(&ms.trees, &mp.trees, "growth {:?} seed {}", growth, seed);
            prop_assert_eq!(rs.loss_history.len(), rp.loss_history.len());
            for (t, (a, b)) in rs.loss_history.iter().zip(&rp.loss_history).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "loss history diverged: growth {:?}, seed {}, tree {}", growth, seed, t
                );
            }
        }
    }

    /// The eval pipeline rides on the same invariant: identical eval
    /// histories and best iterations across backends, sampling enabled.
    #[test]
    fn eval_pipeline_is_bit_identical_across_executors(
        (data, grads, _) in arb_dataset_and_grads(),
        seed in any::<u64>(),
    ) {
        use booster_repro::gbdt::grow::grow_forest_with_eval;
        use booster_repro::gbdt::parallel::ParallelExec;
        use booster_repro::gbdt::train::{EarlyStopping, EvalSet, SequentialExec, TrainConfig};
        let _ = grads;
        let (data, mirror) = relabel(&data);
        let cfg = TrainConfig {
            num_trees: 4,
            max_depth: 3,
            subsample: 0.7,
            colsample_bytree: 0.8,
            seed,
            early_stopping: Some(EarlyStopping { patience: 2, ..Default::default() }),
            ..Default::default()
        };
        // Self-evaluation is enough here: the point is backend identity,
        // not generalization.
        let eval = EvalSet::new(&data);
        let (ms, rs) = grow_forest_with_eval(&data, &mirror, &cfg, &SequentialExec, Some(&eval));
        let (mp, rp) = grow_forest_with_eval(
            &data, &mirror, &cfg, &ParallelExec { chunk_size: 8 }, Some(&eval),
        );
        prop_assert_eq!(&ms.trees, &mp.trees);
        prop_assert_eq!(rs.best_iteration, rp.best_iteration);
        let (hs, hp) = (rs.eval_history.unwrap(), rp.eval_history.unwrap());
        prop_assert_eq!(hs.len(), hp.len());
        for (a, b) in hs.iter().zip(&hp) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

// ------------------------------------------------- flat-ensemble inference

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The flat-ensemble engine must reproduce the per-record node walk
    /// **bit-for-bit** in every execution mode, for models grown under
    /// every strategy, and report the same per-record path lengths as
    /// `predict_batch_with_paths`.
    #[test]
    fn flat_ensemble_is_bit_identical_to_node_walk(
        (data, grads, _) in arb_dataset_and_grads()
    ) {
        use booster_repro::gbdt::grow::GrowthStrategy;
        use booster_repro::gbdt::infer::{ExecMode, FlatEnsemble};
        use booster_repro::gbdt::train::{train_with, SequentialExec, TrainConfig};
        let _ = grads;
        let (data, mirror) = relabel(&data);
        for growth in [
            GrowthStrategy::VertexWise,
            GrowthStrategy::LevelWise,
            GrowthStrategy::LeafWise { max_leaves: 6 },
        ] {
            let cfg = TrainConfig { num_trees: 3, max_depth: 3, growth, ..Default::default() };
            let (model, _) = train_with(&data, &mirror, &cfg, &SequentialExec);
            let flat = FlatEnsemble::from_model(&model).expect("depth-3 trees lower");
            let expect = model.predict_batch(&data);
            for mode in [
                ExecMode::Sequential,
                ExecMode::RecordParallel,
                ExecMode::TreeParallel,
                ExecMode::Compiled,
            ] {
                let got = flat.predict_batch(&data, mode);
                prop_assert_eq!(got.len(), expect.len());
                for (r, (a, b)) in got.iter().zip(&expect).enumerate() {
                    prop_assert_eq!(
                        a.to_bits(), b.to_bits(),
                        "growth {:?}, mode {:?}, record {}", growth, mode, r
                    );
                }
            }
            let (preds_node, paths_node) = model.predict_batch_with_paths(&data);
            let (preds_flat, paths_flat) = flat.predict_batch_with_paths(&data);
            prop_assert_eq!(&paths_node, &paths_flat, "paths, growth {:?}", growth);
            for (a, b) in preds_node.iter().zip(&preds_flat) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}

// ----------------------------------------------------------- serialization

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn model_serialization_roundtrips((data, grads, _) in arb_dataset_and_grads()) {
        use booster_repro::gbdt::columnar::ColumnarMirror;
        use booster_repro::gbdt::serialize::{model_from_bytes, model_to_bytes};
        use booster_repro::gbdt::train::{train, TrainConfig};
        let _ = grads;
        let mirror = ColumnarMirror::from_binned(&data);
        let cfg = TrainConfig { num_trees: 3, max_depth: 3, ..Default::default() };
        let (model, _) = train(&data, &mirror, &cfg);
        let restored = model_from_bytes(&model_to_bytes(&model)).expect("roundtrip");
        for r in 0..data.num_records() {
            prop_assert_eq!(
                restored.predict_binned(&data, r).to_bits(),
                model.predict_binned(&data, r).to_bits()
            );
        }
    }

    /// serialize → deserialize → flat-ensemble lowering: a restored
    /// model's [`FlatEnsemble`] must score **bit-identically** to the
    /// original in-memory model, for every growth strategy and every
    /// execution mode — the wire format preserves exactly what the
    /// batch engine consumes (closing the serialize ↔ infer coverage
    /// gap).
    #[test]
    fn deserialized_models_lower_to_bit_identical_flat_ensembles(
        (data, grads, _) in arb_dataset_and_grads()
    ) {
        use booster_repro::gbdt::grow::GrowthStrategy;
        use booster_repro::gbdt::infer::{ExecMode, FlatEnsemble};
        use booster_repro::gbdt::serialize::{model_from_bytes, model_to_bytes};
        use booster_repro::gbdt::train::{train_with, SequentialExec, TrainConfig};
        let _ = grads;
        let (data, mirror) = relabel(&data);
        for growth in [
            GrowthStrategy::VertexWise,
            GrowthStrategy::LevelWise,
            GrowthStrategy::LeafWise { max_leaves: 6 },
        ] {
            let cfg = TrainConfig { num_trees: 3, max_depth: 3, growth, ..Default::default() };
            let (model, _) = train_with(&data, &mirror, &cfg, &SequentialExec);
            let restored =
                model_from_bytes(&model_to_bytes(&model)).expect("roundtrip");
            let flat = FlatEnsemble::from_model(&restored).expect("depth-3 trees lower");
            let expect = model.predict_batch(&data);
            for mode in [
                ExecMode::Sequential,
                ExecMode::RecordParallel,
                ExecMode::TreeParallel,
                ExecMode::Compiled,
            ] {
                let got = flat.predict_batch(&data, mode);
                for (r, (a, b)) in got.iter().zip(&expect).enumerate() {
                    prop_assert_eq!(
                        a.to_bits(), b.to_bits(),
                        "growth {:?}, mode {:?}, record {}", growth, mode, r
                    );
                }
            }
        }
    }
}

// ------------------------------------------------------------------- DRAM

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dram_completes_every_request_within_physical_bounds(
        blocks in prop::collection::vec(0u64..100_000, 1..300),
        writes in prop::collection::vec(any::<bool>(), 300),
    ) {
        let cfg = DramConfig::default();
        let trace: Vec<Request> = blocks
            .iter()
            .zip(&writes)
            .map(|(&b, &w)| Request { block: b, is_write: w })
            .collect();
        let res = run_trace(cfg, trace.clone());
        prop_assert_eq!(res.blocks, trace.len() as u64);
        // Cannot beat the data bus: at most one block per t_burst per
        // channel per cycle.
        let min_cycles = trace.len() as u64 * u64::from(cfg.t_burst)
            / u64::from(cfg.channels);
        prop_assert!(res.cycles + u64::from(cfg.t_cas) >= min_cycles);
        // A single request's latency floor: tRCD + tCAS + tBURST.
        let floor = u64::from(cfg.t_rcd + cfg.t_cas + cfg.t_burst);
        prop_assert!(res.cycles >= floor);
    }

    #[test]
    fn dram_row_hits_bounded_by_completed(
        start in 0u64..1_000,
        len in 1u64..500,
    ) {
        let cfg = DramConfig { t_refi: 0, ..Default::default() };
        let trace: Vec<Request> = (start..start + len).map(Request::read).collect();
        let res = run_trace(cfg, trace);
        prop_assert!(res.stats.channels.row_hits <= res.stats.channels.completed);
        prop_assert_eq!(res.stats.channels.completed, len);
    }
}
