//! Cross-crate invariants of the timing/energy models: orderings the
//! paper's evaluation depends on must hold for any workload the
//! functional trainer produces.

use booster_repro::datagen::{default_objective, generate_binned, Benchmark};
use booster_repro::gbdt::phases::PhaseLog;
use booster_repro::gbdt::prelude::*;
use booster_repro::sim::{
    real_cpu, real_gpu, BandwidthModel, BoosterConfig, BoosterSim, HostModel, IdealSim,
    Irregularity, RealModelParams,
};

fn phase_log(b: Benchmark, n: usize, scale: f64) -> (PhaseLog, BinnedDataset, Model) {
    let (data, mirror) = generate_binned(b, n, 77);
    let cfg = TrainConfig {
        num_trees: 6,
        max_depth: 6,
        objective: default_objective(b),
        collect_phases: true,
        ..Default::default()
    };
    let (model, report) = train(&data, &mirror, &cfg);
    (report.phase_log.unwrap().scaled(scale), data, model)
}

fn env() -> (BandwidthModel, HostModel) {
    (BandwidthModel::new(booster_dram::DramConfig::default()), HostModel::default())
}

#[test]
fn architecture_ordering_holds_across_benchmarks() {
    let (bw, host) = env();
    for b in [Benchmark::Higgs, Benchmark::Flight, Benchmark::Mq2008] {
        let (log, _, _) = phase_log(b, 5_000, 500.0);
        let (booster, _) =
            BoosterSim::new(BoosterConfig::default(), &bw).training_time(&log, &host);
        let cpu = IdealSim::cpu(&bw).training_time(&log, &host);
        let gpu = IdealSim::gpu(&bw).training_time(&log, &host);
        assert!(
            booster.total() < gpu.total() && gpu.total() < cpu.total(),
            "{b:?}: ordering violated (booster {}, gpu {}, cpu {})",
            booster.total(),
            gpu.total(),
            cpu.total()
        );
        // Step 2 is charged identically (host offload).
        assert!((cpu.steps.step2 - gpu.steps.step2).abs() < 1e-12);
        // Booster pays step 2 plus the replica reduction.
        assert!(booster.steps.step2 >= cpu.steps.step2);
    }
}

#[test]
fn ablation_ordering_no_opts_never_faster() {
    let (bw, host) = env();
    for b in [Benchmark::Allstate, Benchmark::Flight, Benchmark::Higgs] {
        let (log, _, _) = phase_log(b, 5_000, 200.0);
        let full = BoosterConfig::default();
        let run =
            |cfg: BoosterConfig| BoosterSim::new(cfg, &bw).training_time(&log, &host).0.total();
        let t_full = run(full);
        let t_gbf = run(full.group_by_field_only());
        let t_none = run(full.no_opts());
        assert!(
            t_full <= t_gbf + 1e-12 && t_gbf <= t_none + 1e-12,
            "{b:?}: ablation ordering violated: full {t_full}, gbf {t_gbf}, none {t_none}"
        );
    }
}

#[test]
fn redundant_format_never_increases_traffic() {
    let (bw, host) = env();
    for b in Benchmark::ALL {
        let (log, _, _) = phase_log(b, 4_000, 100.0);
        let with = BoosterSim::new(BoosterConfig::default(), &bw).training_time(&log, &host).0;
        let without = BoosterSim::new(BoosterConfig::default().group_by_field_only(), &bw)
            .training_time(&log, &host)
            .0;
        assert!(
            with.dram_blocks <= without.dram_blocks,
            "{b:?}: redundant format increased traffic"
        );
    }
}

#[test]
fn real_machines_are_never_faster_than_ideal() {
    let (bw, host) = env();
    let params = RealModelParams::default();
    for b in [Benchmark::Higgs, Benchmark::Allstate] {
        let (log, data, model) = phase_log(b, 5_000, 500.0);
        let cpu = IdealSim::cpu(&bw).training_time(&log, &host);
        let gpu = IdealSim::gpu(&bw).training_time(&log, &host);
        let mut irr = Irregularity::measure(&data, &model.trees);
        irr.num_records = log.num_records;
        let rc = real_cpu(&cpu, &irr, &params);
        let rg = real_gpu(&gpu, &irr, 10_000, &params);
        assert!(rc.total() >= cpu.total(), "{b:?} real CPU faster than ideal");
        assert!(rg.total() >= gpu.total(), "{b:?} real GPU faster than ideal");
    }
}

#[test]
fn speedup_grows_with_dataset_scale() {
    // The Fig 12 property: bigger datasets amortize the unaccelerated
    // residual, so Booster's speedup must not shrink.
    let (bw, host) = env();
    let (log1, _, _) = phase_log(Benchmark::Higgs, 5_000, 100.0);
    let log10 = log1.scaled(10.0);
    let speedup = |log: &PhaseLog| {
        let (booster, _) = BoosterSim::new(BoosterConfig::default(), &bw).training_time(log, &host);
        let cpu = IdealSim::cpu(&bw).training_time(log, &host);
        cpu.total() / booster.total()
    };
    let s1 = speedup(&log1);
    let s10 = speedup(&log10);
    assert!(s10 > s1, "scaling decreased speedup: {s1} -> {s10}");
}

#[test]
fn booster_accelerated_steps_scale_sublinearly_with_fields() {
    // Wide records bring more intra-record parallelism: Booster's time
    // per record must grow far slower than the field count.
    let (bw, host) = env();
    let (log_narrow, _, _) = phase_log(Benchmark::Flight, 5_000, 100.0); // 8 fields
    let (log_wide, _, _) = phase_log(Benchmark::Iot, 5_000, 100.0); // 115 fields
    let t = |log: &PhaseLog| {
        let (b, _) = BoosterSim::new(BoosterConfig::default(), &bw).training_time(log, &host);
        (b.steps.step1 + b.steps.step3 + b.steps.step5)
            / log.trees.iter().map(|t| t.traversal.n_records as f64).sum::<f64>()
    };
    let per_record_narrow = t(&log_narrow);
    let per_record_wide = t(&log_wide);
    let ratio = per_record_wide / per_record_narrow;
    assert!(ratio < 115.0 / 8.0, "per-record cost grew linearly with fields: {ratio}");
}

#[test]
fn energy_counters_are_consistent() {
    let (bw, host) = env();
    let (log, _, _) = phase_log(Benchmark::Higgs, 4_000, 1.0);
    let (booster, _) = BoosterSim::new(BoosterConfig::default(), &bw).training_time(&log, &host);
    let cpu = IdealSim::cpu(&bw).training_time(&log, &host);
    // Same algorithmic data-structure accesses on both machines.
    assert_eq!(booster.sram_accesses, cpu.sram_accesses);
    // Booster transfers no more DRAM blocks than the CPU.
    assert!(booster.dram_blocks <= cpu.dram_blocks);
    // Counters match the log.
    assert_eq!(booster.sram_accesses, log.total_bin_updates() * 2 + log.total_traversal_lookups());
}

/// The cluster-level histogram-traffic model is pinned to reality: the
/// formula in `sim::cluster_sim::dist_step1_payload_bytes` must equal,
/// byte for byte, what the in-process distributed transport actually
/// counted for the same run — across worker counts and under
/// stochastic sampling (which changes the row ids shipped per build).
#[test]
fn cluster_histogram_traffic_model_matches_measured_bytes() {
    use std::time::Duration;

    use booster_repro::dist::proto::{OP_BUILD_HIST, OP_HIST_DONE};
    use booster_repro::dist::train_distributed_threads;
    use booster_repro::sim::cluster_sim::dist_step1_payload_bytes;

    for (workers, subsample) in [(2usize, 1.0), (4, 1.0), (3, 0.6)] {
        let (data, mirror) = generate_binned(Benchmark::Higgs, 600, 21);
        let cfg = TrainConfig {
            num_trees: 3,
            max_depth: 4,
            subsample,
            seed: 5,
            objective: default_objective(Benchmark::Higgs),
            ..Default::default()
        };
        let out = train_distributed_threads(&data, &mirror, &cfg, workers, Duration::from_secs(20))
            .expect("distributed run");
        let what = format!("N={workers}, subsample={subsample}");

        // Model vs measurement, exactly.
        let predicted: u64 = out
            .stats
            .bin_events
            .iter()
            .map(|e| dist_step1_payload_bytes(data.total_bins(), e.engaged, e.rows_shipped))
            .sum();
        let measured =
            out.stats.comm.bytes_for_op(OP_BUILD_HIST) + out.stats.comm.bytes_for_op(OP_HIST_DONE);
        assert_eq!(predicted, measured, "{what}: predicted vs measured Step-1 bytes");

        // The per-frame log agrees with the per-op counters, and the
        // per-event chain lengths account for every request frame.
        let logged: u64 = out
            .stats
            .comm
            .frame_log
            .iter()
            .filter(|f| f.op == OP_BUILD_HIST || f.op == OP_HIST_DONE)
            .map(|f| u64::from(f.payload_bytes))
            .sum();
        assert_eq!(logged, measured, "{what}: frame log vs per-op counters");
        let request_frames =
            out.stats.comm.frame_log.iter().filter(|f| f.sent && f.op == OP_BUILD_HIST).count()
                as u64;
        let engaged_sum: u64 = out.stats.bin_events.iter().map(|e| u64::from(e.engaged)).sum();
        assert_eq!(request_frames, engaged_sum, "{what}: one request per engaged worker");
    }
}
