//! Differential test layer for compiled inference.
//!
//! The compiled bytecode program's correctness contract is **bitwise
//! equality** with `Model::predict_batch` (and hence with every
//! `FlatEnsemble` mode, which carry the same contract). This suite
//! enforces it differentially across the whole configuration space —
//! every `GrowthStrategy`, stochastic-sampling configs, truncated
//! models, every partition shape, records with missing values, and the
//! program wire roundtrip — plus corruption/fuzz tests proving the
//! bytecode decoder rejects hostile streams with typed errors and never
//! panics or misscores.
//!
//! Runs on the vendored `PROPTEST_SEED` rail: CI's second-seed property
//! job re-runs the whole differential layer under a different seed, and
//! the release-profile test job re-runs it with optimizations on (the
//! branch-free mask arithmetic must be exact in both profiles).

use proptest::prelude::*;

use booster_repro::gbdt::columnar::ColumnarMirror;
use booster_repro::gbdt::compile::{compile, CompileOptions, CompiledEnsemble};
use booster_repro::gbdt::dataset::{Dataset, RawValue};
use booster_repro::gbdt::grow::GrowthStrategy;
use booster_repro::gbdt::infer::{ExecMode, FlatEnsemble, TreeScorer};
use booster_repro::gbdt::predict::Model;
use booster_repro::gbdt::preprocess::BinnedDataset;
use booster_repro::gbdt::program::{program_from_bytes, ProgramError, INSTR_SLOT_BYTES};
use booster_repro::gbdt::schema::{DatasetSchema, FieldSchema};
use booster_repro::gbdt::train::{train_with, SequentialExec, TrainConfig};

/// Mixed numeric/categorical datasets **with missing values** (numeric
/// cells go missing at ~1/8 probability), labeled so trees actually
/// split: the compiled walk's absent-mask path is exercised on every
/// case.
fn arb_training_data() -> impl Strategy<Value = (BinnedDataset, ColumnarMirror)> {
    (2usize..6, 30usize..150).prop_flat_map(|(nf, n)| {
        let schema = DatasetSchema::new(
            (0..nf)
                .map(|i| {
                    if i % 2 == 0 {
                        FieldSchema::numeric_with_bins(format!("n{i}"), 8)
                    } else {
                        FieldSchema::categorical(format!("c{i}"), 4)
                    }
                })
                .collect(),
        );
        (Just(schema), prop::collection::vec(prop::collection::vec(any::<u8>(), nf), n..=n))
            .prop_map(move |(schema, raw_rows)| {
                let mut ds = Dataset::new(schema);
                let mut row = Vec::with_capacity(nf);
                for cells in &raw_rows {
                    row.clear();
                    for (f, &c) in cells.iter().enumerate() {
                        if f % 2 == 0 {
                            if c % 8 == 0 {
                                row.push(RawValue::Missing);
                            } else {
                                row.push(RawValue::Num(f32::from(c)));
                            }
                        } else {
                            row.push(RawValue::Cat(u32::from(c % 4)));
                        }
                    }
                    let label = (u32::from(cells[0]) % 3) as f32;
                    ds.push_record(&row, label);
                }
                let binned = BinnedDataset::from_dataset(&ds);
                let mirror = ColumnarMirror::from_binned(&binned);
                (binned, mirror)
            })
    })
}

/// Assert `got` is bitwise-equal to `expect`.
fn assert_bits(got: &[f64], expect: &[f64], what: &str) {
    assert_eq!(got.len(), expect.len(), "{what}: length");
    for (r, (a, b)) in got.iter().zip(expect).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: record {r}");
    }
}

const GROWTHS: [GrowthStrategy; 3] = [
    GrowthStrategy::VertexWise,
    GrowthStrategy::LevelWise,
    GrowthStrategy::LeafWise { max_leaves: 6 },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Compiled output is bit-identical to the node walk AND the flat
    /// engine under every growth strategy, through both the ExecMode
    /// entry point and a direct compile, across partition shapes from
    /// one-tree-per-cluster to a single cluster, and after a program
    /// wire roundtrip.
    #[test]
    fn compiled_is_bit_identical_across_growth_and_partitions(
        (data, mirror) in arb_training_data()
    ) {
        for growth in GROWTHS {
            let cfg = TrainConfig { num_trees: 3, max_depth: 3, growth, ..Default::default() };
            let (model, _) = train_with(&data, &mirror, &cfg, &SequentialExec);
            let flat = FlatEnsemble::from_model(&model).expect("depth-3 trees lower");
            let expect = model.predict_batch(&data);
            assert_bits(
                &flat.predict_batch(&data, ExecMode::Sequential),
                &expect,
                &format!("flat sequential, growth {growth:?}"),
            );
            assert_bits(
                &flat.predict_batch(&data, ExecMode::Compiled),
                &expect,
                &format!("ExecMode::Compiled, growth {growth:?}"),
            );
            for cluster_bytes in [1usize, 24 * INSTR_SLOT_BYTES, usize::MAX] {
                let c = compile(&flat, &CompileOptions { cluster_bytes, max_trees: None })
                    .expect("compile");
                assert_bits(
                    &c.predict_batch(&data),
                    &expect,
                    &format!("compiled cluster_bytes={cluster_bytes}, growth {growth:?}"),
                );
                let back = CompiledEnsemble::from_bytes(&c.to_bytes()).expect("roundtrip");
                assert_bits(
                    &back.predict_batch(&data),
                    &expect,
                    &format!("wire roundtrip cluster_bytes={cluster_bytes}, growth {growth:?}"),
                );
            }
        }
    }

    /// Stochastic-sampling configs (row subsampling + per-tree and
    /// per-node column sampling) change which trees get grown, never the
    /// compiled engine's exactness.
    #[test]
    fn compiled_is_bit_identical_under_stochastic_training(
        (data, mirror) in arb_training_data(),
        seed in any::<u64>(),
    ) {
        for growth in GROWTHS {
            let cfg = TrainConfig {
                num_trees: 3,
                max_depth: 3,
                subsample: 0.6,
                colsample_bytree: 0.7,
                colsample_bynode: 0.7,
                seed,
                growth,
                ..Default::default()
            };
            let (model, _) = train_with(&data, &mirror, &cfg, &SequentialExec);
            let flat = FlatEnsemble::from_model(&model).expect("lowering");
            let expect = model.predict_batch(&data);
            assert_bits(
                &flat.predict_batch(&data, ExecMode::Compiled),
                &expect,
                &format!("stochastic, growth {growth:?}, seed {seed}"),
            );
        }
    }

    /// Truncation equivalence both ways: compiling a truncated model,
    /// and compiling the full model with `max_trees` (the DCE pass
    /// dropping the suffix), must each match the truncated node walk
    /// bit-for-bit — at every boundary (0 clamps to 1, full length,
    /// past the end).
    #[test]
    fn truncated_models_compile_bit_identically(
        (data, mirror) in arb_training_data()
    ) {
        let cfg = TrainConfig { num_trees: 4, max_depth: 3, ..Default::default() };
        let (model, _) = train_with(&data, &mirror, &cfg, &SequentialExec);
        let full_flat = FlatEnsemble::from_model(&model).expect("lowering");
        for k in [0usize, 1, 2, model.num_trees(), model.num_trees() + 5] {
            let truncated = model.truncated(k);
            let expect = truncated.predict_batch(&data);
            // Path A: truncate the model, then compile.
            let tf = FlatEnsemble::from_model(&truncated).expect("lowering");
            assert_bits(
                &tf.predict_batch(&data, ExecMode::Compiled),
                &expect,
                &format!("truncate-then-compile, k={k}"),
            );
            // Path B: compile the full model with truncation as DCE.
            let c = compile(
                &full_flat,
                &CompileOptions { max_trees: Some(k), ..CompileOptions::default() },
            )
            .expect("compile");
            prop_assert_eq!(c.num_trees(), truncated.num_trees(), "clamping, k={}", k);
            assert_bits(&c.predict_batch(&data), &expect, &format!("compile-time DCE, k={k}"));
        }
    }

    /// Corrupting any single byte of a compiled program must yield a
    /// typed decode error — never a panic, and never a program that
    /// silently misscores (the body checksum catches flips structural
    /// validation cannot, e.g. in a leaf weight).
    #[test]
    fn bit_flipped_programs_are_rejected_with_typed_errors(
        (data, mirror) in arb_training_data(),
        stride in 1usize..7,
    ) {
        let cfg = TrainConfig { num_trees: 2, max_depth: 3, ..Default::default() };
        let (model, _) = train_with(&data, &mirror, &cfg, &SequentialExec);
        let flat = FlatEnsemble::from_model(&model).expect("lowering");
        let bytes = flat.compiled().to_bytes().to_vec();
        for i in (0..bytes.len()).step_by(stride) {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0xFF;
            match program_from_bytes(&corrupted) {
                Err(
                    ProgramError::BadMagic
                    | ProgramError::BadVersion(_)
                    | ProgramError::Corrupt(_)
                    | ProgramError::Invalid(_),
                ) => {}
                Ok(_) => prop_assert!(false, "byte {} flip decoded successfully", i),
            }
        }
    }
}

// --------------------------------------------------- deterministic tests

fn trained_fixture() -> (Model, BinnedDataset) {
    let schema = DatasetSchema::new(vec![
        FieldSchema::numeric_with_bins("x", 16),
        FieldSchema::categorical("c", 3),
        FieldSchema::numeric_with_bins("y", 8),
    ]);
    let mut ds = Dataset::new(schema);
    for i in 0..600 {
        let x = if i % 11 == 0 { RawValue::Missing } else { RawValue::Num(i as f32) };
        let c = RawValue::Cat(i % 3);
        let y = RawValue::Num(((i * 7) % 100) as f32);
        ds.push_record(&[x, c, y], f32::from(u8::from(i >= 300)));
    }
    let data = BinnedDataset::from_dataset(&ds);
    let mirror = ColumnarMirror::from_binned(&data);
    let cfg = TrainConfig { num_trees: 5, max_depth: 4, ..Default::default() };
    let (model, _) = train_with(&data, &mirror, &cfg, &SequentialExec);
    (model, data)
}

/// A single tree scored through `TreeScorer` (the incremental training
/// scorer) and through a one-tree compiled program accumulate the exact
/// same margins — the two single-tree engines agree bit-for-bit.
#[test]
fn tree_scorer_and_compiled_single_tree_agree_bitwise() {
    let (model, data) = trained_fixture();
    for (t, tree) in model.trees.iter().enumerate() {
        let scorer = TreeScorer::try_new(tree, &model.binnings).expect("small tree lowers");
        let mut scorer_margins = vec![0.0f64; data.num_records()];
        scorer.add_margins(&data, &mut scorer_margins);

        // One-tree model, squared-error loss (identity transform) and
        // zero base score: predictions ARE the tree's margins.
        let one = Model {
            trees: vec![tree.clone()],
            base_score: 0.0,
            objective: booster_repro::gbdt::gradients::Objective::SquaredError,
            num_outputs: 1,
            schema: model.schema.clone(),
            binnings: model.binnings.clone(),
        };
        let flat = FlatEnsemble::from_model(&one).expect("lowering");
        let compiled_margins = flat.compiled().predict_batch(&data);
        for (r, (a, b)) in scorer_margins.iter().zip(&compiled_margins).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "tree {t}, record {r}");
        }
    }
}

/// Every strict prefix of a valid program must fail to decode cleanly
/// (mirrors the serve frame fuzz style), and over-length input must be
/// rejected as trailing bytes rather than ignored.
#[test]
fn truncated_and_overlength_programs_are_rejected() {
    let (model, _) = trained_fixture();
    let flat = FlatEnsemble::from_model(&model).expect("lowering");
    let bytes = flat.compiled().to_bytes().to_vec();
    for cut in 0..bytes.len() {
        let r = program_from_bytes(&bytes[..cut]);
        assert!(r.is_err(), "prefix of {cut} bytes unexpectedly decoded");
    }
    let mut longer = bytes.clone();
    longer.push(0);
    // The appended byte lands inside the checksummed body region.
    assert_eq!(
        program_from_bytes(&longer),
        Err(ProgramError::Corrupt("checksum mismatch")),
        "over-length input must fail"
    );
    // Valid bytes still decode (the fuzz loop above must not have been
    // vacuous).
    assert!(program_from_bytes(&bytes).is_ok());
}

/// A hostile instruction count cannot trigger a huge allocation: the
/// decoder bounds every count by the remaining input first. (The body
/// is re-checksummed so the count check — not the checksum — is what
/// trips.)
#[test]
fn hostile_counts_cannot_cause_huge_allocations() {
    let (model, _) = trained_fixture();
    let flat = FlatEnsemble::from_model(&model).expect("lowering");
    let bytes = flat.compiled().to_bytes().to_vec();
    let body = &bytes[16..];
    // Body layout: objective tag u8 | num_outputs u32 | base_score f64
    // | num_fields u32 | num_trees u32 | per tree (len,depth) … — blow
    // up the first tree's len.
    let mut evil_body = body.to_vec();
    evil_body[21..25].copy_from_slice(&(u32::MAX - 1).to_le_bytes());
    let mut evil = Vec::new();
    evil.extend_from_slice(&bytes[..8]);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in &evil_body {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    evil.extend_from_slice(&h.to_le_bytes());
    evil.extend_from_slice(&evil_body);
    match program_from_bytes(&evil) {
        Err(ProgramError::Corrupt(_) | ProgramError::Invalid(_)) => {}
        other => panic!("hostile tree len must be rejected, got {other:?}"),
    }
}
