//! Golden-format regression tests for the serialized-model wire format.
//!
//! Two committed artifacts are pinned:
//!
//! - `tests/fixtures/model_v1.bstr` — the version-1 encoding of the
//!   canonical model, committed while `serialize::VERSION` was 1. It is
//!   never regenerated: it exists to prove the versioned read path keeps
//!   decoding (and predicting identically) as the format evolves.
//! - `tests/fixtures/model_v2.bstr` — the current-version encoding of
//!   the same canonical model (the header gained an objective tag and
//!   `num_outputs`). Serializing the canonical model today must
//!   reproduce these bytes exactly, so any encoding change shows up as
//!   a byte diff before it silently breaks deployed models.
//!
//! Regenerating the *current* fixture (only after an intentional format
//! change, alongside a new `model_vN.bstr` — never overwrite the old
//! versions): `cargo test --test golden_format -- --ignored bless`

use std::path::PathBuf;

use booster_repro::gbdt::binning::BinBoundaries;
use booster_repro::gbdt::dataset::RawValue;
use booster_repro::gbdt::gradients::Objective;
use booster_repro::gbdt::predict::Model;
use booster_repro::gbdt::preprocess::FieldBinning;
use booster_repro::gbdt::schema::{DatasetSchema, FieldSchema};
use booster_repro::gbdt::serialize::{model_from_bytes, model_to_bytes, MAGIC, VERSION};
use booster_repro::gbdt::split::SplitRule;
use booster_repro::gbdt::tree::{Node, Tree};

fn fixture_path(version: u32) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/fixtures/model_v{version}.bstr"))
}

fn fixture_bytes(version: u32) -> Vec<u8> {
    std::fs::read(fixture_path(version)).unwrap_or_else(|_| {
        panic!(
            "tests/fixtures/model_v{version}.bstr missing — regenerate the current version with \
             `cargo test --test golden_format -- --ignored bless` (old versions are committed \
             once and never rewritten)"
        )
    })
}

/// The canonical model: hand-built trees over one numeric and one
/// categorical field, exercising every node encoding the format has
/// (numeric split, categorical split, both default directions, leaves
/// with non-trivial f64 weights, a single-leaf tree).
fn canonical_model() -> Model {
    let schema = DatasetSchema::new(vec![
        FieldSchema::numeric_with_bins("x", 8),
        FieldSchema::categorical("c", 3),
    ]);
    let binnings = vec![
        FieldBinning::Numeric(
            BinBoundaries::from_uppers(vec![1.5, 3.0, 10.0]).expect("increasing"),
        ),
        FieldBinning::Categorical { categories: 3 },
    ];
    let t0 = Tree::new(vec![
        Node::Internal {
            field: 0,
            rule: SplitRule::Numeric { threshold_bin: 1 },
            default_left: false,
            left: 1,
            right: 2,
        },
        Node::Leaf { weight: 0.125 },
        Node::Internal {
            field: 1,
            rule: SplitRule::Categorical { category: 1 },
            default_left: true,
            left: 3,
            right: 4,
        },
        Node::Leaf { weight: -0.5 },
        Node::Leaf { weight: 0.6789 },
    ]);
    let t1 = Tree::new(vec![Node::Leaf { weight: 0.0625 }]);
    Model {
        trees: vec![t0, t1],
        base_score: 0.25,
        objective: Objective::Logistic,
        num_outputs: 1,
        schema,
        binnings,
    }
}

/// A canonical *multi-output* model sharing the scalar model's trees
/// plus one more leaf tree, so the v2-only header fields (objective
/// payload + `num_outputs`) are exercised by a committed artifact too.
fn canonical_multiclass_model() -> Model {
    let mut model = canonical_model();
    model.trees.push(Tree::new(vec![Node::Leaf { weight: -0.25 }]));
    model.objective = Objective::Softmax { num_class: 3 };
    model.num_outputs = 3;
    model.base_score = 0.0;
    model
}

/// Records covering every routing path: both numeric sides, the
/// categorical yes/no sides, and missing values in both fields.
fn probe_records() -> Vec<[RawValue; 2]> {
    vec![
        [RawValue::Num(0.5), RawValue::Cat(0)],
        [RawValue::Num(2.0), RawValue::Cat(1)],
        [RawValue::Num(50.0), RawValue::Cat(2)],
        [RawValue::Missing, RawValue::Cat(1)],
        [RawValue::Num(5.0), RawValue::Missing],
        [RawValue::Missing, RawValue::Missing],
    ]
}

#[test]
fn current_serializer_reproduces_v2_fixture_bit_exactly() {
    let bytes = model_to_bytes(&canonical_model());
    assert_eq!(
        &bytes[..],
        &fixture_bytes(2)[..],
        "serializer output diverged from the committed v2 fixture — if the format change is \
         intentional, bump serialize::VERSION, keep a v2 read path, and bless a new fixture"
    );
}

#[test]
fn v1_fixture_still_deserializes_as_the_format_evolves() {
    let restored = model_from_bytes(&fixture_bytes(1)).expect("v1 bytes must keep parsing");
    let expect = canonical_model();
    assert_eq!(restored.trees, expect.trees);
    assert_eq!(restored.base_score.to_bits(), expect.base_score.to_bits());
    assert_eq!(restored.objective, expect.objective);
    assert_eq!(restored.num_outputs, 1, "v1 artifacts are single-output by construction");
    for (i, rec) in probe_records().iter().enumerate() {
        assert_eq!(
            restored.predict_raw(rec).to_bits(),
            expect.predict_raw(rec).to_bits(),
            "probe record {i}"
        );
    }
}

#[test]
fn v2_fixture_roundtrips_and_scores_identically() {
    let restored = model_from_bytes(&fixture_bytes(2)).expect("v2 bytes must parse");
    let expect = canonical_model();
    assert_eq!(restored.trees, expect.trees);
    assert_eq!(restored.objective, expect.objective);
    assert_eq!(restored.num_outputs, expect.num_outputs);
    for (i, rec) in probe_records().iter().enumerate() {
        assert_eq!(
            restored.predict_raw(rec).to_bits(),
            expect.predict_raw(rec).to_bits(),
            "probe record {i}"
        );
    }
}

#[test]
fn multiclass_header_roundtrips_through_the_v2_format() {
    let model = canonical_multiclass_model();
    let restored = model_from_bytes(&model_to_bytes(&model)).expect("multiclass roundtrip");
    assert_eq!(restored.objective, Objective::Softmax { num_class: 3 });
    assert_eq!(restored.num_outputs, 3);
    assert_eq!(restored.trees, model.trees);
    for (i, rec) in probe_records().iter().enumerate() {
        let got = restored.predict_raw_outputs(rec);
        let want = model.predict_raw_outputs(rec);
        assert_eq!(got.len(), 3);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits(), "probe record {i}");
        }
    }
}

#[test]
fn fixture_headers_pin_magic_and_version() {
    let v1 = fixture_bytes(1);
    assert_eq!(&v1[..4], MAGIC, "v1 fixture magic");
    assert_eq!(u32::from_le_bytes(v1[4..8].try_into().unwrap()), 1, "v1 fixture version");
    let v2 = fixture_bytes(2);
    assert_eq!(&v2[..4], MAGIC, "v2 fixture magic");
    assert_eq!(u32::from_le_bytes(v2[4..8].try_into().unwrap()), 2, "v2 fixture version");
    // When VERSION moves past 2 this assertion must be *replaced* (not
    // deleted) by a check that v2 still deserializes via a compat path.
    assert_eq!(VERSION, 2, "VERSION bumped: add a v2 read path and a model_v{VERSION} fixture");
}

#[test]
fn v1_fixture_survives_the_flat_ensemble_lowering() {
    use booster_repro::gbdt::infer::FlatEnsemble;
    let restored = model_from_bytes(&fixture_bytes(1)).unwrap();
    let flat = FlatEnsemble::from_model(&restored).expect("tiny trees lower");
    assert_eq!(flat.num_trees(), 2);
    // The per-record flat walk agrees with the node walk on the probes.
    let expect = canonical_model();
    let mut predictor =
        booster_repro::gbdt::infer::Predictor::from_model(&restored).expect("lowering");
    for (i, rec) in probe_records().iter().enumerate() {
        assert_eq!(
            predictor.predict_one(rec).to_bits(),
            expect.predict_raw(rec).to_bits(),
            "probe record {i}"
        );
    }
}

/// Regenerate the current-version fixture. Ignored so it never runs in
/// CI; invoke explicitly after an intentional format change.
#[test]
#[ignore = "writes tests/fixtures/model_v2.bstr; run only to bless a new fixture"]
fn bless() {
    let path = fixture_path(VERSION);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, model_to_bytes(&canonical_model())).unwrap();
    println!("wrote {}", path.display());
}
