//! Golden-format regression tests for the serialized-model wire format.
//!
//! `tests/fixtures/model_v1.bstr` is a committed version-1 artifact of a
//! hand-built canonical model (no training involved, so the bytes are a
//! pure function of the serializer). Two guarantees are pinned:
//!
//! 1. **Writer stability** — serializing the canonical model today must
//!    reproduce the committed bytes exactly. Any encoding change shows
//!    up as a byte diff here before it silently breaks deployed models.
//! 2. **Reader compatibility** — the committed v1 bytes must keep
//!    deserializing (and predicting identically) as the format evolves.
//!    When `serialize::VERSION` is bumped, the old version needs a
//!    versioned read path; this file is the tripwire.
//!
//! Regenerating the fixture (only after an *intentional* format change,
//! alongside a new `model_vN.bstr`):
//! `cargo test --test golden_format -- --ignored bless`

use std::path::PathBuf;

use booster_repro::gbdt::binning::BinBoundaries;
use booster_repro::gbdt::dataset::RawValue;
use booster_repro::gbdt::gradients::Loss;
use booster_repro::gbdt::predict::Model;
use booster_repro::gbdt::preprocess::FieldBinning;
use booster_repro::gbdt::schema::{DatasetSchema, FieldSchema};
use booster_repro::gbdt::serialize::{model_from_bytes, model_to_bytes, MAGIC, VERSION};
use booster_repro::gbdt::split::SplitRule;
use booster_repro::gbdt::tree::{Node, Tree};

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/model_v1.bstr")
}

fn fixture_bytes() -> Vec<u8> {
    std::fs::read(fixture_path()).expect(
        "tests/fixtures/model_v1.bstr missing — regenerate with \
         `cargo test --test golden_format -- --ignored bless`",
    )
}

/// The canonical model: hand-built trees over one numeric and one
/// categorical field, exercising every node encoding the format has
/// (numeric split, categorical split, both default directions, leaves
/// with non-trivial f64 weights, a single-leaf tree).
fn canonical_model() -> Model {
    let schema = DatasetSchema::new(vec![
        FieldSchema::numeric_with_bins("x", 8),
        FieldSchema::categorical("c", 3),
    ]);
    let binnings = vec![
        FieldBinning::Numeric(
            BinBoundaries::from_uppers(vec![1.5, 3.0, 10.0]).expect("increasing"),
        ),
        FieldBinning::Categorical { categories: 3 },
    ];
    let t0 = Tree::new(vec![
        Node::Internal {
            field: 0,
            rule: SplitRule::Numeric { threshold_bin: 1 },
            default_left: false,
            left: 1,
            right: 2,
        },
        Node::Leaf { weight: 0.125 },
        Node::Internal {
            field: 1,
            rule: SplitRule::Categorical { category: 1 },
            default_left: true,
            left: 3,
            right: 4,
        },
        Node::Leaf { weight: -0.5 },
        Node::Leaf { weight: 0.6789 },
    ]);
    let t1 = Tree::new(vec![Node::Leaf { weight: 0.0625 }]);
    Model { trees: vec![t0, t1], base_score: 0.25, loss: Loss::Logistic, schema, binnings }
}

/// Records covering every routing path: both numeric sides, the
/// categorical yes/no sides, and missing values in both fields.
fn probe_records() -> Vec<[RawValue; 2]> {
    vec![
        [RawValue::Num(0.5), RawValue::Cat(0)],
        [RawValue::Num(2.0), RawValue::Cat(1)],
        [RawValue::Num(50.0), RawValue::Cat(2)],
        [RawValue::Missing, RawValue::Cat(1)],
        [RawValue::Num(5.0), RawValue::Missing],
        [RawValue::Missing, RawValue::Missing],
    ]
}

#[test]
fn current_serializer_reproduces_v1_fixture_bit_exactly() {
    let bytes = model_to_bytes(&canonical_model());
    assert_eq!(
        &bytes[..],
        &fixture_bytes()[..],
        "serializer output diverged from the committed v1 fixture — if the format change is \
         intentional, bump serialize::VERSION, keep a v1 read path, and bless a new fixture"
    );
}

#[test]
fn v1_fixture_still_deserializes_as_the_format_evolves() {
    let restored = model_from_bytes(&fixture_bytes()).expect("v1 bytes must keep parsing");
    let expect = canonical_model();
    assert_eq!(restored.trees, expect.trees);
    assert_eq!(restored.base_score.to_bits(), expect.base_score.to_bits());
    assert_eq!(restored.loss, expect.loss);
    for (i, rec) in probe_records().iter().enumerate() {
        assert_eq!(
            restored.predict_raw(rec).to_bits(),
            expect.predict_raw(rec).to_bits(),
            "probe record {i}"
        );
    }
}

#[test]
fn fixture_header_pins_magic_and_version() {
    let bytes = fixture_bytes();
    assert_eq!(&bytes[..4], MAGIC, "fixture magic");
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    assert_eq!(version, 1, "the committed fixture is a version-1 artifact");
    // When VERSION moves past 1 this assertion must be *replaced* (not
    // deleted) by a check that v1 still deserializes via a compat path.
    assert_eq!(VERSION, 1, "VERSION bumped: add a v1 read path and a model_v{VERSION} fixture");
}

#[test]
fn v1_fixture_survives_the_flat_ensemble_lowering() {
    use booster_repro::gbdt::infer::FlatEnsemble;
    let restored = model_from_bytes(&fixture_bytes()).unwrap();
    let flat = FlatEnsemble::from_model(&restored).expect("tiny trees lower");
    assert_eq!(flat.num_trees(), 2);
    // The per-record flat walk agrees with the node walk on the probes.
    let expect = canonical_model();
    let mut predictor =
        booster_repro::gbdt::infer::Predictor::from_model(&restored).expect("lowering");
    for (i, rec) in probe_records().iter().enumerate() {
        assert_eq!(
            predictor.predict_one(rec).to_bits(),
            expect.predict_raw(rec).to_bits(),
            "probe record {i}"
        );
    }
}

/// Regenerate the fixture. Ignored so it never runs in CI; invoke
/// explicitly after an intentional format change.
#[test]
#[ignore = "writes tests/fixtures/model_v1.bstr; run only to bless a new fixture"]
fn bless() {
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, model_to_bytes(&canonical_model())).unwrap();
    println!("wrote {}", path.display());
}
