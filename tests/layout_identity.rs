//! Layout-differential tests for the bit-packed bin storage.
//!
//! The `u8` (packed) and `u32` (wide) physical layouts of the row-major
//! bin matrix and the columnar mirror are a pure storage choice: every
//! training kernel widens each bin index to the same logical `u32`
//! before touching a float, so trained models, loss histories, work
//! counters, and phase logs must be **identical** across layouts — on
//! every growth strategy, on both step executors, and under stochastic
//! sampling.
//!
//! Runs on the vendored `PROPTEST_SEED` rail: CI's second-seed property
//! job re-runs this layer under a different seed.

use proptest::prelude::*;

use booster_repro::gbdt::columnar::ColumnarMirror;
use booster_repro::gbdt::dataset::{Dataset, RawValue};
use booster_repro::gbdt::gradients::GradPair;
use booster_repro::gbdt::grow::GrowthStrategy;
use booster_repro::gbdt::histogram::NodeHistogram;
use booster_repro::gbdt::parallel::ParallelExec;
use booster_repro::gbdt::preprocess::BinnedDataset;
use booster_repro::gbdt::schema::{DatasetSchema, FieldSchema};
use booster_repro::gbdt::train::{train_with, SequentialExec, StepExecutor, TrainConfig};

/// Mixed numeric/categorical datasets with missing values; every field
/// fits 256 bins, so the natural layout is fully packed.
fn arb_packable_data() -> impl Strategy<Value = (BinnedDataset, ColumnarMirror)> {
    (2usize..5, 40usize..160).prop_flat_map(|(nf, n)| {
        let schema = DatasetSchema::new(
            (0..nf)
                .map(|i| {
                    if i % 2 == 0 {
                        FieldSchema::numeric_with_bins(format!("n{i}"), 16)
                    } else {
                        FieldSchema::categorical(format!("c{i}"), 5)
                    }
                })
                .collect(),
        );
        (Just(schema), prop::collection::vec(prop::collection::vec(any::<u8>(), nf), n..=n))
            .prop_map(move |(schema, raw_rows)| {
                let mut ds = Dataset::new(schema);
                let mut row = Vec::with_capacity(nf);
                for cells in &raw_rows {
                    row.clear();
                    for (f, &c) in cells.iter().enumerate() {
                        if f % 2 == 0 {
                            if c % 9 == 0 {
                                row.push(RawValue::Missing);
                            } else {
                                row.push(RawValue::Num(f32::from(c)));
                            }
                        } else {
                            row.push(RawValue::Cat(u32::from(c % 5)));
                        }
                    }
                    let label = (u32::from(cells[0]) % 3) as f32;
                    ds.push_record(&row, label);
                }
                let binned = BinnedDataset::from_dataset(&ds);
                let mirror = ColumnarMirror::from_binned(&binned);
                (binned, mirror)
            })
    })
}

const GROWTHS: [GrowthStrategy; 3] = [
    GrowthStrategy::VertexWise,
    GrowthStrategy::LevelWise,
    GrowthStrategy::LeafWise { max_leaves: 6 },
];

/// Train the same config on the packed layout and on the forced-wide
/// layout; everything observable must match exactly.
fn assert_layouts_agree(
    data: &BinnedDataset,
    mirror: &ColumnarMirror,
    cfg: &TrainConfig,
    exec: &dyn StepExecutor,
    what: &str,
) {
    assert!(data.is_packed(), "{what}: packable dataset must pack");
    let wide_data = data.to_wide();
    let wide_mirror = mirror.to_wide();
    assert!(!wide_data.is_packed());
    let (m_packed, rep_packed) = train_with(data, mirror, cfg, exec);
    let (m_wide, rep_wide) = train_with(&wide_data, &wide_mirror, cfg, exec);
    assert_eq!(m_packed.trees, m_wide.trees, "{what}: models must be bit-identical");
    assert_eq!(rep_packed.loss_history, rep_wide.loss_history, "{what}: loss history");
    // The instrumentation contract: identical operation counts and
    // phase descriptors — packing changes bytes moved, never the
    // logical work.
    assert_eq!(
        format!("{:?}", rep_packed.work),
        format!("{:?}", rep_wide.work),
        "{what}: work counters"
    );
    assert_eq!(
        format!("{:?}", rep_packed.phase_log),
        format!("{:?}", rep_wide.phase_log),
        "{what}: phase log"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Packed == wide, bit for bit, across every growth strategy and
    /// both executors, with stochastic sampling on.
    #[test]
    fn packed_and_wide_layouts_train_bit_identically(
        (data, mirror) in arb_packable_data(),
        seed in any::<u64>(),
    ) {
        for growth in GROWTHS {
            let cfg = TrainConfig {
                num_trees: 3,
                max_depth: 3,
                subsample: 0.7,
                colsample_bytree: 0.8,
                seed,
                growth,
                collect_phases: true,
                ..Default::default()
            };
            assert_layouts_agree(
                &data,
                &mirror,
                &cfg,
                &SequentialExec,
                &format!("sequential, growth {growth:?}"),
            );
            // Tiny chunks force the parallel paths on every step.
            assert_layouts_agree(
                &data,
                &mirror,
                &cfg,
                &ParallelExec { chunk_size: 16 },
                &format!("parallel, growth {growth:?}"),
            );
        }
    }
}

// ------------------------------------------------- deterministic tests

/// A dataset whose widest field has exactly `categories + 1` bins
/// (the absent bin), labeled so trees split on it.
fn categorical_dataset(categories: u32) -> (BinnedDataset, ColumnarMirror) {
    let schema = DatasetSchema::new(vec![
        FieldSchema::categorical("wide", categories),
        FieldSchema::numeric_with_bins("x", 16),
    ]);
    let mut ds = Dataset::new(schema);
    for i in 0..1200u32 {
        let c = (i * 31) % categories;
        let y = f32::from(u8::from(c % 4 == 1)) + (i % 7) as f32 * 0.05;
        ds.push_record(&[RawValue::Cat(c), RawValue::Num(i as f32)], y);
    }
    let binned = BinnedDataset::from_dataset(&ds);
    let mirror = ColumnarMirror::from_binned(&binned);
    (binned, mirror)
}

/// 255 categories + absent = 256 bins: the last field shape that still
/// packs. One more category crosses the boundary and forces the wide
/// fallback — and the two sides of the boundary train equivalently.
#[test]
fn packing_boundary_at_256_bins() {
    let (at, at_mirror) = categorical_dataset(255);
    assert_eq!(at.binnings()[0].bin_count(), 256);
    assert!(at.is_packed(), "exactly 256 bins must still pack");
    assert!(at_mirror.is_packed(0));

    let (over, over_mirror) = categorical_dataset(256);
    assert_eq!(over.binnings()[0].bin_count(), 257);
    assert!(!over.is_packed(), "257 bins must fall back to u32");
    assert!(!over_mirror.is_packed(0), "the wide field's column stays u32");
    assert!(over_mirror.is_packed(1), "narrow fields still pack per-field");

    // Both sides of the boundary train, and the packed side is
    // bit-identical to its forced-wide twin (the boundary bin 255 is
    // the highest value a u8 can carry — the widen path must not clip).
    let cfg = TrainConfig { num_trees: 4, max_depth: 4, ..Default::default() };
    assert_layouts_agree(&at, &at_mirror, &cfg, &SequentialExec, "256-bin boundary");
    let (m, rep) = train_with(&over, &over_mirror, &cfg, &SequentialExec);
    assert_eq!(m.num_trees(), 4);
    assert!(rep.loss_history.last().unwrap() < &rep.loss_history[0]);
}

/// The Step-1 instrumentation contract: `bin_records` reports exactly
/// `records x fields` histogram updates on both layouts and both
/// executors.
#[test]
fn bin_records_update_count_is_records_times_fields() {
    let (data, mirror) = categorical_dataset(255);
    let wide_data = data.to_wide();
    let wide_mirror = mirror.to_wide();
    let n = data.num_records();
    let grads: Vec<GradPair> = (0..n).map(|i| GradPair::new((i as f64).sin(), 1.0)).collect();
    let rows: Vec<u32> = (0..n as u32).step_by(3).collect();
    let expected = rows.len() as u64 * data.num_fields() as u64;
    for (d, m, what) in [(&data, &mirror, "packed"), (&wide_data, &wide_mirror, "wide")] {
        let mut h = NodeHistogram::zeroed(d);
        assert_eq!(h.bin_records(d, &rows, &grads), expected, "{what}: row-major kernel");
        let mut h = NodeHistogram::zeroed(d);
        let exec = ParallelExec { chunk_size: 64 };
        assert_eq!(exec.bin_records(d, m, &rows, &grads, &mut h), expected, "{what}: parallel");
        assert_eq!(h.total_count(), rows.len() as u64, "{what}: vertex total");
    }
}
