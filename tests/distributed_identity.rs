//! Differential tests for distributed training: the distributed
//! trainer must be **bit-identical** to local training — same trees,
//! same base score, same loss history, same eval history, same early
//! stopping decision — for any worker count, any contiguous shard
//! plan, every growth strategy, and under stochastic sampling.
//!
//! The claim is exact, not approximate: `f64` addition is not
//! associative, so a naive AllReduce of independently-built partial
//! histograms would drift by ULPs; the chained fixed-order reduction
//! must not. These tests compare bit patterns.
//!
//! Runs on the vendored `PROPTEST_SEED` rail: CI's second-seed property
//! job re-runs this layer under a different seed.

use std::net::TcpListener;
use std::time::Duration;

use proptest::prelude::*;

use booster_repro::datagen::{
    default_objective, generate_binned, generate_binned_split, Benchmark,
};
use booster_repro::dist::{
    serve_worker_tcp, train_distributed, train_distributed_threads, train_distributed_with_eval,
    ChannelComm, DistOutcome, ShardPlan, TcpComm,
};
use booster_repro::gbdt::columnar::ColumnarMirror;
use booster_repro::gbdt::gradients::Objective;
use booster_repro::gbdt::grow::{grow_forest_with_eval, GrowthStrategy};
use booster_repro::gbdt::predict::Model;
use booster_repro::gbdt::preprocess::BinnedDataset;
use booster_repro::gbdt::train::{
    EarlyStopping, EvalSet, SequentialExec, TrainConfig, TrainReport,
};

const TIMEOUT: Duration = Duration::from_secs(20);

const GROWTHS: [GrowthStrategy; 3] = [
    GrowthStrategy::VertexWise,
    GrowthStrategy::LevelWise,
    GrowthStrategy::LeafWise { max_leaves: 6 },
];

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// The full identity assertion: trees, base score, loss history and
/// (when present) eval history and best iteration, all as bit patterns.
fn assert_identical(local: &(Model, TrainReport), dist: &DistOutcome, what: &str) {
    assert_eq!(local.0.trees, dist.model.trees, "{what}: trees must be bit-identical");
    assert_eq!(local.0.base_score.to_bits(), dist.model.base_score.to_bits(), "{what}: base score");
    assert_eq!(
        bits(&local.1.loss_history),
        bits(&dist.report.loss_history),
        "{what}: loss history"
    );
    assert_eq!(
        local.1.eval_history.as_deref().map(bits),
        dist.report.eval_history.as_deref().map(bits),
        "{what}: eval history"
    );
    assert_eq!(local.1.best_iteration, dist.report.best_iteration, "{what}: best iteration");
}

fn run_jittered(
    data: &BinnedDataset,
    mirror: &ColumnarMirror,
    cfg: &TrainConfig,
    workers: usize,
    plan_seed: u64,
) -> DistOutcome {
    let plan = ShardPlan::seeded(data.num_records(), workers, plan_seed);
    let shards = plan.shard(data).expect("plan covers the dataset");
    let comm = ChannelComm::spawn(shards, TIMEOUT);
    train_distributed(data, mirror, cfg, comm, &plan).expect("distributed run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// N ∈ {1, 2, 4, 8} workers × all growth strategies × stochastic
    /// sampling, on even and seeded-jittered contiguous plans:
    /// everything observable matches local training exactly.
    #[test]
    fn distributed_training_is_bit_identical_to_local(
        bench_idx in 0usize..3,
        records in 60usize..180,
        data_seed in any::<u64>(),
        train_seed in any::<u64>(),
        plan_seed in any::<u64>(),
    ) {
        let bench = [Benchmark::Iot, Benchmark::Higgs, Benchmark::Allstate][bench_idx];
        let (data, mirror) = generate_binned(bench, records, data_seed);
        for growth in GROWTHS {
            let cfg = TrainConfig {
                num_trees: 3,
                max_depth: 3,
                subsample: 0.7,
                colsample_bytree: 0.8,
                seed: train_seed,
                growth,
                objective: default_objective(bench),
                ..Default::default()
            };
            let local = grow_forest_with_eval(&data, &mirror, &cfg, &SequentialExec, None);
            for workers in [1usize, 2, 4, 8] {
                let out = train_distributed_threads(&data, &mirror, &cfg, workers, TIMEOUT)
                    .expect("distributed run");
                assert_identical(&local, &out, &format!("{growth:?}, N={workers}, even plan"));
                let out = run_jittered(&data, &mirror, &cfg, workers, plan_seed);
                assert_identical(&local, &out, &format!("{growth:?}, N={workers}, jittered plan"));
            }
        }
    }

    /// Validation-driven early stopping: the eval scores and the
    /// truncation decision are reproduced exactly, so distributed and
    /// local training stop at the same tree.
    #[test]
    fn distributed_early_stopping_matches_local(
        records in 120usize..240,
        data_seed in any::<u64>(),
        train_seed in any::<u64>(),
    ) {
        let (data, mirror, eval_data) =
            generate_binned_split(Benchmark::Higgs, records, data_seed, 0.25);
        let eval = EvalSet::new(&eval_data);
        let cfg = TrainConfig {
            num_trees: 8,
            max_depth: 3,
            subsample: 0.8,
            seed: train_seed,
            early_stopping: Some(EarlyStopping { patience: 2, ..Default::default() }),
            objective: Objective::Logistic,
            ..Default::default()
        };
        let local = grow_forest_with_eval(&data, &mirror, &cfg, &SequentialExec, Some(&eval));
        for workers in [1usize, 2, 4] {
            let plan = ShardPlan::even(data.num_records(), workers);
            let shards = plan.shard(&data).expect("plan covers the dataset");
            let comm = ChannelComm::spawn(shards, TIMEOUT);
            let out = train_distributed_with_eval(&data, &mirror, &cfg, comm, &plan, Some(&eval))
                .expect("distributed run");
            assert_identical(&local, &out, &format!("early stopping, N={workers}"));
        }
    }
}

// ------------------------------------------------- deterministic tests

/// The localhost-TCP transport reproduces local training exactly too:
/// same bytes through a real socket, same model out.
#[test]
fn tcp_transport_is_bit_identical_to_local() {
    let (data, mirror) = generate_binned(Benchmark::Flight, 400, 11);
    let cfg = TrainConfig {
        num_trees: 4,
        max_depth: 4,
        subsample: 0.9,
        seed: 3,
        objective: default_objective(Benchmark::Flight),
        ..Default::default()
    };
    let local = grow_forest_with_eval(&data, &mirror, &cfg, &SequentialExec, None);
    for workers in [2usize, 4] {
        let plan = ShardPlan::even(data.num_records(), workers);
        let shards = plan.shard(&data).expect("plan covers the dataset");
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for shard in shards {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind worker");
            addrs.push(listener.local_addr().expect("local addr"));
            handles.push(std::thread::spawn(move || serve_worker_tcp(shard, listener)));
        }
        let comm = TcpComm::connect(&addrs, TIMEOUT).expect("connect workers");
        let out = train_distributed(&data, &mirror, &cfg, comm, &plan).expect("distributed run");
        assert_identical(&local, &out, &format!("tcp, N={workers}"));
        for h in handles {
            h.join().expect("worker thread").expect("worker served cleanly");
        }
    }
}

/// Unsupported objectives fail with a typed error before any worker
/// traffic, not mid-run.
#[test]
fn coupled_objectives_are_rejected_up_front() {
    let (data, mirror) = generate_binned(Benchmark::Iot, 50, 1);
    let cfg = TrainConfig {
        num_trees: 2,
        objective: Objective::Softmax { num_class: 3 },
        ..Default::default()
    };
    let err = train_distributed_threads(&data, &mirror, &cfg, 2, TIMEOUT).unwrap_err();
    assert!(
        matches!(err, booster_repro::dist::DistError::Unsupported(_)),
        "expected Unsupported, got {err:?}"
    );
}

/// The Step-1 traffic measurements line up with the run: one bin event
/// per explicit histogram build, each engaging at most N workers, and
/// the per-op counters see exactly the BuildHist/HistDone traffic.
#[test]
fn traffic_stats_are_coherent() {
    let (data, mirror) = generate_binned(Benchmark::Iot, 300, 5);
    let cfg = TrainConfig {
        num_trees: 3,
        max_depth: 3,
        objective: default_objective(Benchmark::Iot),
        ..Default::default()
    };
    let out = train_distributed_threads(&data, &mirror, &cfg, 4, TIMEOUT).expect("run");
    assert!(!out.stats.bin_events.is_empty(), "some histogram builds must have happened");
    assert!(out.stats.bin_events.iter().all(|e| e.engaged >= 1 && e.engaged <= 4));
    assert!(out.stats.comm.frames_sent > 0 && out.stats.comm.frames_received > 0);
}
