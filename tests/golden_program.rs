//! Golden-format regression tests for the compiled-program wire format.
//!
//! Two committed artifacts are pinned:
//!
//! - `tests/fixtures/program_v1.bin` — version-1 program bytes,
//!   committed while `program::VERSION` was 1 (bare loss byte in the
//!   body, no `num_outputs`). Never regenerated: it proves the
//!   versioned read path keeps decoding — and scoring identically — as
//!   the format evolves.
//! - `tests/fixtures/program_v2.bin` — the current compiler output for
//!   the canonical chain: the v1 *model* fixture (`model_v1.bstr`)
//!   deserialized, lowered to a `FlatEnsemble`, and compiled with
//!   pinned `CompileOptions`. The whole pipeline — model decode, table
//!   lowering, BFS renumbering, DCE, partitioning, instruction
//!   encoding, program serialization — is a pure function of the
//!   committed bytes, so any change anywhere shows up here as a byte
//!   diff before it can silently invalidate persisted programs.
//!
//! Mirrors `tests/golden_format.rs`: writer stability, reader
//! compatibility, header pin, and an ignored `bless` regenerator.
//! Regenerate only after an *intentional* compiler or format change:
//! `cargo test --test golden_program -- --ignored bless`

use std::path::PathBuf;

use booster_repro::gbdt::compile::{compile, CompileOptions, CompiledEnsemble};
use booster_repro::gbdt::dataset::RawValue;
use booster_repro::gbdt::infer::FlatEnsemble;
use booster_repro::gbdt::predict::Model;
use booster_repro::gbdt::program::{program_from_bytes, MAGIC, VERSION};
use booster_repro::gbdt::serialize::model_from_bytes;

fn model_fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/model_v1.bstr")
}

fn program_fixture_path(version: u32) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/fixtures/program_v{version}.bin"))
}

fn fixture_model() -> Model {
    let bytes = std::fs::read(model_fixture_path()).expect("model_v1.bstr missing");
    model_from_bytes(&bytes).expect("v1 model fixture must parse")
}

/// The pinned compile configuration. Deliberately NOT
/// `CompileOptions::default()`: if the default cluster budget is ever
/// tuned, the golden bytes must not move with it.
fn pinned_options() -> CompileOptions {
    CompileOptions { cluster_bytes: 4096, max_trees: None }
}

fn canonical_program_bytes() -> Vec<u8> {
    let model = fixture_model();
    let flat = FlatEnsemble::from_model(&model).expect("fixture trees lower");
    let compiled = compile(&flat, &pinned_options()).expect("fixture compiles");
    compiled.to_bytes().to_vec()
}

fn fixture_bytes(version: u32) -> Vec<u8> {
    std::fs::read(program_fixture_path(version)).unwrap_or_else(|_| {
        panic!(
            "tests/fixtures/program_v{version}.bin missing — regenerate the current version with \
             `cargo test --test golden_program -- --ignored bless` (old versions are committed \
             once and never rewritten)"
        )
    })
}

/// Same probe set as the model golden tests: every routing path through
/// the canonical trees, including missing values in both fields.
fn probe_records() -> Vec<[RawValue; 2]> {
    vec![
        [RawValue::Num(0.5), RawValue::Cat(0)],
        [RawValue::Num(2.0), RawValue::Cat(1)],
        [RawValue::Num(50.0), RawValue::Cat(2)],
        [RawValue::Missing, RawValue::Cat(1)],
        [RawValue::Num(5.0), RawValue::Missing],
        [RawValue::Missing, RawValue::Missing],
    ]
}

#[test]
fn current_compiler_reproduces_v2_fixture_bit_exactly() {
    assert_eq!(
        &canonical_program_bytes()[..],
        &fixture_bytes(2)[..],
        "compiler output diverged from the committed v2 program fixture — if the pipeline \
         change is intentional, bump program::VERSION, keep a v2 read path, and bless a new \
         fixture"
    );
}

#[test]
fn v1_program_fixture_still_decodes_and_scores_identically() {
    let compiled = CompiledEnsemble::from_bytes(&fixture_bytes(1))
        .expect("v1 program bytes must keep decoding");
    let model = fixture_model();
    assert_eq!(compiled.num_trees(), model.num_trees());
    for (i, rec) in probe_records().iter().enumerate() {
        let bins = model.bin_raw(rec);
        let mut out = [0.0f64];
        compiled.score_bins_into(&bins, &mut out);
        assert_eq!(out[0].to_bits(), model.predict_raw(rec).to_bits(), "probe record {i}");
    }
}

#[test]
fn v2_program_fixture_decodes_and_scores_identically() {
    let compiled =
        CompiledEnsemble::from_bytes(&fixture_bytes(2)).expect("v2 program bytes must decode");
    let model = fixture_model();
    assert_eq!(compiled.num_trees(), model.num_trees());
    for (i, rec) in probe_records().iter().enumerate() {
        let bins = model.bin_raw(rec);
        let mut out = [0.0f64];
        compiled.score_bins_into(&bins, &mut out);
        assert_eq!(out[0].to_bits(), model.predict_raw(rec).to_bits(), "probe record {i}");
    }
}

#[test]
fn program_fixture_headers_pin_magic_and_version() {
    let v1 = fixture_bytes(1);
    assert_eq!(&v1[..4], MAGIC, "v1 fixture magic");
    assert_eq!(u32::from_le_bytes(v1[4..8].try_into().unwrap()), 1, "v1 fixture version");
    let v2 = fixture_bytes(2);
    assert_eq!(&v2[..4], MAGIC, "v2 fixture magic");
    assert_eq!(u32::from_le_bytes(v2[4..8].try_into().unwrap()), 2, "v2 fixture version");
    assert_eq!(VERSION, 2, "VERSION bumped: add a v2 read path and a program_v{VERSION} fixture");
}

#[test]
fn program_fixtures_pass_full_validation() {
    // Decode through the raw entry point so the structural validator —
    // not just the checksum — is exercised on the committed artifacts.
    for version in [1u32, 2] {
        let program = program_from_bytes(&fixture_bytes(version)).expect("decode");
        program
            .validate()
            .unwrap_or_else(|e| panic!("v{version} fixture violates a structural invariant: {e}"));
    }
}

/// Regenerate the current-version fixture. Ignored so it never runs in
/// CI; invoke explicitly after an intentional compiler or format change.
#[test]
#[ignore = "writes tests/fixtures/program_v2.bin; run only to bless a new fixture"]
fn bless() {
    let path = program_fixture_path(VERSION);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, canonical_program_bytes()).unwrap();
    println!("wrote {}", path.display());
}
