//! Edge cases and failure injection across crates: degenerate dataset
//! shapes, extreme configurations, and resource-starved simulators must
//! behave predictably, never hang or panic.

use booster_repro::dram::{pattern_trace, run_trace, DramConfig, Pattern, Request};
use booster_repro::gbdt::columnar::ColumnarMirror;
use booster_repro::gbdt::dataset::{Dataset, RawValue};
use booster_repro::gbdt::preprocess::BinnedDataset;
use booster_repro::gbdt::schema::{DatasetSchema, FieldSchema};
use booster_repro::gbdt::train::{train, TrainConfig};
use booster_repro::sim::{BandwidthModel, BoosterConfig, BoosterSim, HostModel, IdealSim};

// ------------------------------------------------------------------ gbdt

#[test]
fn single_record_dataset_trains() {
    let schema = DatasetSchema::new(vec![FieldSchema::numeric("x")]);
    let mut ds = Dataset::new(schema);
    ds.push_record(&[RawValue::Num(1.0)], 3.0);
    let data = BinnedDataset::from_dataset(&ds);
    let mirror = ColumnarMirror::from_binned(&data);
    let (model, _) = train(&data, &mirror, &TrainConfig::default());
    // A single record can never split; the model predicts its label.
    assert!((model.predict_binned(&data, 0) - 3.0).abs() < 1e-6);
    assert!(model.trees.iter().all(|t| t.num_leaves() == 1));
}

#[test]
fn max_depth_zero_yields_stump_free_model() {
    let schema = DatasetSchema::new(vec![FieldSchema::numeric("x")]);
    let mut ds = Dataset::new(schema);
    for i in 0..100 {
        ds.push_record(&[RawValue::Num(i as f32)], (i % 2) as f32);
    }
    let data = BinnedDataset::from_dataset(&ds);
    let mirror = ColumnarMirror::from_binned(&data);
    let cfg = TrainConfig { max_depth: 0, num_trees: 5, ..Default::default() };
    let (model, _) = train(&data, &mirror, &cfg);
    assert_eq!(model.max_depth(), 0, "depth-0 budget means leaf-only trees");
}

#[test]
fn all_missing_column_is_harmless() {
    let schema =
        DatasetSchema::new(vec![FieldSchema::numeric("useful"), FieldSchema::numeric("ghost")]);
    let mut ds = Dataset::new(schema);
    for i in 0..400 {
        ds.push_record(
            &[RawValue::Num(i as f32), RawValue::Missing],
            f32::from(u8::from(i >= 200)),
        );
    }
    let data = BinnedDataset::from_dataset(&ds);
    let mirror = ColumnarMirror::from_binned(&data);
    let cfg = TrainConfig { num_trees: 10, learning_rate: 0.5, ..Default::default() };
    let (model, report) = train(&data, &mirror, &cfg);
    assert!(report.loss_history.last().unwrap() < &report.loss_history[0]);
    // The ghost column never splits (all records share its absent bin).
    assert_eq!(model.feature_importance()[1], 0);
}

#[test]
fn constant_feature_never_selected() {
    let schema =
        DatasetSchema::new(vec![FieldSchema::numeric("constant"), FieldSchema::numeric("signal")]);
    let mut ds = Dataset::new(schema);
    for i in 0..300 {
        ds.push_record(
            &[RawValue::Num(7.0), RawValue::Num(i as f32)],
            f32::from(u8::from(i >= 150)),
        );
    }
    let data = BinnedDataset::from_dataset(&ds);
    let mirror = ColumnarMirror::from_binned(&data);
    let (model, _) = train(&data, &mirror, &TrainConfig::default());
    assert_eq!(model.feature_importance()[0], 0);
    assert!(model.feature_importance()[1] > 0);
}

#[test]
fn wide_categorical_field_uses_two_byte_entries() {
    // > 255 categories forces 2-byte column entries; everything still
    // round-trips.
    let schema = DatasetSchema::new(vec![FieldSchema::categorical("wide", 1000)]);
    let mut ds = Dataset::new(schema);
    for i in 0..2_000u32 {
        ds.push_record(&[RawValue::Cat(i % 1000)], f32::from(u8::from(i % 1000 < 500)));
    }
    let data = BinnedDataset::from_dataset(&ds);
    assert_eq!(data.record_bytes(), 2);
    let mirror = ColumnarMirror::from_binned(&data);
    let cfg = TrainConfig { num_trees: 5, learning_rate: 0.5, ..Default::default() };
    let (_, report) = train(&data, &mirror, &cfg);
    assert!(report.loss_history.last().unwrap() < &report.loss_history[0]);
}

// ------------------------------------------------------------------ dram

#[test]
fn queue_depth_one_still_completes_everything() {
    let cfg = DramConfig { queue_depth: 1, ..Default::default() };
    let res = run_trace(cfg, pattern_trace(Pattern::Sequential, 2_000));
    assert_eq!(res.blocks, 2_000);
    // Head-of-line blocking costs bandwidth but not correctness.
    let deep = run_trace(DramConfig::default(), pattern_trace(Pattern::Sequential, 2_000));
    assert!(res.cycles >= deep.cycles);
}

#[test]
fn refresh_dominated_config_still_makes_progress() {
    // Pathological refresh: 50% of time in tRFC. Requests still finish.
    // The trace must be long enough to straddle several refresh windows.
    let cfg = DramConfig { t_refi: 320, t_rfc: 160, ..Default::default() };
    let res = run_trace(cfg, pattern_trace(Pattern::Sequential, 20_000));
    assert_eq!(res.blocks, 20_000);
    let normal = run_trace(DramConfig::default(), pattern_trace(Pattern::Sequential, 20_000));
    assert!(
        res.cycles as f64 > normal.cycles as f64 * 1.3,
        "heavy refresh must cost cycles: {} vs {}",
        res.cycles,
        normal.cycles
    );
}

#[test]
fn single_channel_single_bank_worst_case() {
    let cfg = DramConfig { channels: 1, banks: 1, t_refi: 0, ..Default::default() };
    // Row-conflict-heavy trace on one bank: strictly serialized rows.
    let trace: Vec<Request> = (0..100).map(|i| Request::read(i * 16)).collect();
    let res = run_trace(cfg, trace);
    assert_eq!(res.blocks, 100);
    // Every access after the first opens a new row: ~tRC per access.
    assert!(res.cycles >= 99 * 40, "cycles {}", res.cycles);
}

// ------------------------------------------------------------------- sim

#[test]
fn one_cluster_chip_is_slow_but_sound() {
    let (data, mirror) =
        booster_repro::datagen::generate_binned(booster_repro::datagen::Benchmark::Higgs, 3_000, 1);
    let cfg = TrainConfig { num_trees: 3, collect_phases: true, ..Default::default() };
    let (_, report) = train(&data, &mirror, &cfg);
    let log = report.phase_log.unwrap().scaled(100.0);
    let bw = BandwidthModel::new(booster_dram::DramConfig::default());
    let host = HostModel::default();
    let tiny = BoosterConfig { clusters: 1, ..Default::default() };
    let (tiny_run, _) = BoosterSim::new(tiny, &bw).training_time(&log, &host);
    let (full_run, _) = BoosterSim::new(BoosterConfig::default(), &bw).training_time(&log, &host);
    let cpu = IdealSim::cpu(&bw).training_time(&log, &host);
    assert!(tiny_run.total() > full_run.total(), "64 BUs must be slower than 3200");
    // Even one cluster has 64-way parallelism at 8 cycles/update; it
    // should still not collapse below the 32-lane CPU by much.
    assert!(tiny_run.total() < cpu.total() * 3.0);
}

#[test]
fn empty_phase_log_times_to_zero_accelerated_work() {
    let log = booster_gbdt::phases::PhaseLog {
        trees: Vec::new(),
        num_records: 0,
        num_fields: 1,
        record_bytes: 1,
        total_bins: 10,
        field_entry_bytes: vec![1],
        field_bins: vec![10],
    };
    let bw = BandwidthModel::new(booster_dram::DramConfig::default());
    let (run, _) =
        BoosterSim::new(BoosterConfig::default(), &bw).training_time(&log, &HostModel::default());
    assert_eq!(run.steps.step1, 0.0);
    assert_eq!(run.steps.step3, 0.0);
    assert_eq!(run.steps.step5, 0.0);
    assert_eq!(run.dram_blocks, 0);
}
