//! The introspection surfaces of the telemetry subsystem, end to end:
//! text-format stability (ordering, escaping), the reserved
//! introspection frame op on the scoring codec (pure roundtrip and over
//! a live TCP front-end), registry consistency under concurrent
//! writers, and a drift test pinning README's metric-name table to the
//! names the subsystems actually register.

use std::sync::Arc;

use booster_repro::datagen::{default_objective, generate, Benchmark};
use booster_repro::gbdt::prelude::*;
use booster_repro::obs::metrics::Registry;
use booster_repro::serve::frame::{
    decode_introspect_request, decode_metrics_response, encode_introspect_request,
    encode_metrics_response, OP_INTROSPECT, OP_METRICS,
};
use booster_repro::serve::{ModelRegistry, ServeConfig, Server, TcpFrontend, TcpScoreClient};

// ---------------------------------------------------------------------
// Text format: stable ordering and escaping.
// ---------------------------------------------------------------------

#[test]
fn render_text_is_sorted_and_escaped() {
    static REG: Registry = Registry::new();
    // Register out of order; rendering must sort by (name, labels).
    REG.counter("zz_last_total", &[]).add(3);
    REG.gauge("aa_first", &[("k", "v2")]).set(2);
    REG.gauge("aa_first", &[("k", "v1")]).set(1);
    REG.counter("mid_total", &[("path", "a\\b\"c\nd")]).add(9);

    let text = REG.render_text();
    assert_eq!(
        text,
        "aa_first{k=\"v1\"} 1\naa_first{k=\"v2\"} 2\n\
         mid_total{path=\"a\\\\b\\\"c\\nd\"} 9\nzz_last_total 3\n"
    );
    // Rendering twice is byte-identical (the golden property scrapers
    // rely on).
    assert_eq!(text, REG.render_text());
}

#[test]
fn render_text_histogram_block_shape() {
    static REG: Registry = Registry::new();
    let h = REG.histogram("lat", &[]);
    for v in [10, 20, 30, 40] {
        h.record(v);
    }
    let text = REG.render_text();
    for want in ["lat{quantile=\"0.5\"}", "lat{quantile=\"0.99\"}", "lat_sum 100", "lat_count 4"] {
        assert!(text.contains(want), "missing {want:?} in:\n{text}");
    }
}

// ---------------------------------------------------------------------
// Frame op: pure codec roundtrip, then over a live front-end.
// ---------------------------------------------------------------------

#[test]
fn introspect_frame_roundtrip() {
    let req = encode_introspect_request();
    assert_eq!(req, vec![OP_INTROSPECT]);
    decode_introspect_request(&req).expect("well-formed request decodes");
    assert!(decode_introspect_request(&[OP_INTROSPECT, 0]).is_err(), "trailing bytes rejected");
    assert!(decode_introspect_request(&[0x01]).is_err(), "wrong op rejected");

    let body = "x_total 1\ny{l=\"v\"} 2\n";
    let resp = encode_metrics_response(body);
    assert_eq!(resp[0], OP_METRICS);
    assert_eq!(decode_metrics_response(&resp).expect("decodes"), body);

    // Truncated and oversized length prefixes are typed errors.
    assert!(decode_metrics_response(&resp[..resp.len() - 1]).is_err());
    let mut long = resp.clone();
    long[1] = long[1].wrapping_add(1);
    assert!(decode_metrics_response(&long).is_err());
}

fn train_tiny() -> (Model, Arc<[RawValue]>) {
    let ds = generate(Benchmark::Higgs, 600, 11);
    let data = BinnedDataset::from_dataset(&ds);
    let mirror = ColumnarMirror::from_binned(&data);
    let cfg = TrainConfig {
        num_trees: 3,
        max_depth: 3,
        objective: default_objective(Benchmark::Higgs),
        ..Default::default()
    };
    let (model, _) = train(&data, &mirror, &cfg);
    let record: Arc<[RawValue]> = (0..ds.num_fields()).map(|f| ds.value(0, f)).collect();
    (model, record)
}

#[test]
fn introspection_over_live_frontend() {
    let (model, record) = train_tiny();
    let registry = Arc::new(ModelRegistry::new());
    registry.register(&model).expect("registers");
    let server = Server::start(Arc::clone(&registry), ServeConfig::default()).expect("server");
    let frontend = TcpFrontend::bind("127.0.0.1:0", server.handle()).expect("bind");
    let mut client = TcpScoreClient::connect(frontend.local_addr()).expect("connect");

    // Score, introspect, score again: the op interleaves with the
    // scoring protocol on one connection.
    client.score(&record, None).expect("transport").expect("scored");
    let text = client.fetch_metrics().expect("introspection answered");
    assert!(
        text.contains("serve_requests_total{result=\"completed\"}"),
        "metrics text should carry serve counters:\n{text}"
    );
    // Well-formed: every line is `name value` or `name{labels} value`.
    for line in text.lines() {
        let (head, value) = line.rsplit_once(' ').unwrap_or(("", ""));
        assert!(!head.is_empty() && value.parse::<f64>().is_ok(), "malformed line {line:?}");
    }
    client.score(&record, None).expect("transport").expect("still scoring");

    frontend.shutdown();
    server.shutdown();
}

// ---------------------------------------------------------------------
// Concurrency: reads never tear, increments are never lost.
// ---------------------------------------------------------------------

#[test]
fn concurrent_writers_lose_nothing_and_reads_never_tear() {
    static REG: Registry = Registry::new();
    const WRITERS: usize = 8;
    const INCS: u64 = 20_000;

    let c = REG.counter("contended_total", &[]);
    let g = REG.gauge("seesaw", &[]);
    std::thread::scope(|s| {
        for _ in 0..WRITERS {
            let c = Arc::clone(&c);
            let g = Arc::clone(&g);
            s.spawn(move || {
                for _ in 0..INCS {
                    c.inc();
                    g.add(2);
                    g.sub(2);
                }
            });
        }
        // Concurrent scrapes: every rendered value must be one the
        // writers could legally have produced (no torn reads — the
        // counter only grows, the gauge stays within [0, 2*WRITERS]).
        s.spawn(|| {
            let mut last = 0u64;
            for _ in 0..200 {
                let text = REG.render_text();
                for line in text.lines() {
                    if let Some(v) = line.strip_prefix("contended_total ") {
                        let v: u64 = v.parse().expect("untorn integer");
                        assert!(v >= last && v <= WRITERS as u64 * INCS, "impossible value {v}");
                        last = v;
                    } else if let Some(v) = line.strip_prefix("seesaw ") {
                        let v: i64 = v.parse().expect("untorn integer");
                        assert!((0..=2 * WRITERS as i64).contains(&v), "impossible gauge {v}");
                    }
                }
            }
        });
    });
    assert_eq!(c.get(), WRITERS as u64 * INCS, "no increment may be lost");
    assert_eq!(g.get(), 0);
}

// ---------------------------------------------------------------------
// Drift test: README's metric table vs the registry's real contents.
// ---------------------------------------------------------------------

#[test]
fn readme_metric_table_matches_registry() {
    // Exercise every subsystem so the lazily-registered names exist.
    let (model, record) = train_tiny();
    let registry = Arc::new(ModelRegistry::new());
    registry.register(&model).expect("registers");
    let server = Server::start(Arc::clone(&registry), ServeConfig::default()).expect("server");
    let handle = server.handle();
    handle.submit(record, None).expect("accepted").wait().expect("scored");
    server.shutdown();

    let ds = generate(Benchmark::Higgs, 400, 3);
    let data = BinnedDataset::from_dataset(&ds);
    let mirror = ColumnarMirror::from_binned(&data);
    let cfg = TrainConfig { num_trees: 2, max_depth: 3, ..Default::default() };
    booster_repro::dist::train_distributed_threads(
        &data,
        &mirror,
        &cfg,
        2,
        std::time::Duration::from_secs(30),
    )
    .expect("distributed run");

    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md"))
        .expect("README.md readable");
    // Pull the backticked first column of the Observability table rows.
    let table_names: Vec<&str> = readme
        .lines()
        .filter_map(|l| {
            let rest = l.strip_prefix("| `")?;
            let name = rest.split('`').next()?;
            (l.contains("| counter |")
                || l.contains("| gauge |")
                || l.contains("| histogram |")
                || l.contains("| sampled |"))
            .then_some(name)
        })
        .collect();
    assert!(table_names.len() >= 15, "README table rows went missing: {table_names:?}");

    let registered = booster_repro::obs::global().metric_names();
    for name in table_names {
        assert!(
            registered.iter().any(|r| r == name),
            "README documents metric {name:?} but the registry never registered it; \
             registered: {registered:?}"
        );
    }
}
