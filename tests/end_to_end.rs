//! End-to-end integration tests: generators -> preprocessing -> training
//! -> inference, across all five paper benchmarks.

use booster_repro::datagen::{default_objective, generate, generate_binned, Benchmark};
use booster_repro::gbdt::columnar::ColumnarMirror;
use booster_repro::gbdt::metrics;
use booster_repro::gbdt::parallel::train_parallel;
use booster_repro::gbdt::prelude::*;
use booster_repro::gbdt::preprocess::BinnedDataset;
use booster_repro::gbdt::split::SplitParams;

fn train_cfg(b: Benchmark, trees: usize) -> TrainConfig {
    TrainConfig {
        num_trees: trees,
        max_depth: 6,
        objective: default_objective(b),
        split: SplitParams { gamma: 1.0, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn every_benchmark_trains_and_improves() {
    for b in Benchmark::ALL {
        let (data, mirror) = generate_binned(b, 6_000, 42);
        let (model, report) = train(&data, &mirror, &train_cfg(b, 10));
        assert!(model.num_trees() >= 1, "{b:?} produced no trees");
        let first = report.loss_history.first().unwrap();
        let last = report.loss_history.last().unwrap();
        assert!(last < first, "{b:?} loss did not improve: {first} -> {last}");
    }
}

#[test]
fn classification_benchmarks_reach_reasonable_auc() {
    for b in [Benchmark::Iot, Benchmark::Higgs, Benchmark::Flight] {
        let (data, mirror) = generate_binned(b, 12_000, 9);
        let (model, _) = train(&data, &mirror, &train_cfg(b, 30));
        let preds = model.predict_batch(&data);
        let labels: Vec<f64> = data.labels().iter().map(|&y| f64::from(y)).collect();
        let auc = metrics::auc(&preds, &labels);
        assert!(auc > 0.7, "{b:?} AUC too low: {auc}");
    }
}

#[test]
fn iot_is_nearly_separable() {
    let (data, mirror) = generate_binned(Benchmark::Iot, 12_000, 3);
    let (model, _) = train(&data, &mirror, &train_cfg(Benchmark::Iot, 20));
    let preds = model.predict_batch(&data);
    let labels: Vec<f64> = data.labels().iter().map(|&y| f64::from(y)).collect();
    let acc = metrics::accuracy(&preds, &labels, 0.5);
    assert!(acc > 0.97, "IoT accuracy {acc}");
}

#[test]
fn iot_trees_are_shallower_than_higgs_trees() {
    // The structural property behind the paper's IoT observations
    // (Section IV): shallow trees for the separable dataset.
    let mut depths = Vec::new();
    for b in [Benchmark::Iot, Benchmark::Higgs] {
        let (data, mirror) = generate_binned(b, 15_000, 4);
        let cfg = TrainConfig {
            split: SplitParams { gamma: 3.0, ..Default::default() },
            ..train_cfg(b, 15)
        };
        let (model, _) = train(&data, &mirror, &cfg);
        depths.push(model.mean_leaf_depth());
    }
    assert!(
        depths[0] < depths[1] * 0.75,
        "IoT mean depth {} should be well below Higgs {}",
        depths[0],
        depths[1]
    );
}

#[test]
fn categorical_benchmarks_have_lopsided_splits() {
    // The property driving the paper's smaller-child observation for
    // Allstate/Flight: most categorical one-hot splits are lopsided, so
    // the explicitly-binned fraction is small.
    for b in [Benchmark::Allstate, Benchmark::Flight] {
        let (data, mirror) = generate_binned(b, 10_000, 6);
        let cfg = TrainConfig { collect_phases: true, ..train_cfg(b, 10) };
        let (_, report) = train(&data, &mirror, &cfg);
        let log = report.phase_log.unwrap();
        let mut binned = 0u64;
        let mut reaching = 0u64;
        for t in &log.trees {
            for n in t.nodes.iter().skip(1) {
                binned += n.bin.n_binned as u64;
                reaching += n.bin.n_reaching as u64;
            }
        }
        let frac = binned as f64 / reaching.max(1) as f64;
        assert!(frac < 0.35, "{b:?}: explicitly-binned fraction {frac} not lopsided");
    }
}

#[test]
fn parallel_training_matches_sequential_on_benchmarks() {
    for b in [Benchmark::Higgs, Benchmark::Flight] {
        let (data, mirror) = generate_binned(b, 8_000, 2);
        let cfg = train_cfg(b, 8);
        let (m_seq, _) = train(&data, &mirror, &cfg);
        let (m_par, _) = train_parallel(&data, &mirror, &cfg);
        let labels: Vec<f64> = data.labels().iter().map(|&y| f64::from(y)).collect();
        let l_seq = metrics::logloss(&m_seq.predict_batch(&data), &labels);
        let l_par = metrics::logloss(&m_par.predict_batch(&data), &labels);
        assert!((l_seq - l_par).abs() < 0.02 * (1.0 + l_seq), "{b:?}: seq {l_seq} vs par {l_par}");
    }
}

#[test]
fn raw_and_binned_prediction_agree() {
    let raw = generate(Benchmark::Flight, 3_000, 8);
    let binned = BinnedDataset::from_dataset(&raw);
    let mirror = ColumnarMirror::from_binned(&binned);
    let (model, _) = train(&binned, &mirror, &train_cfg(Benchmark::Flight, 10));
    let mut record = Vec::new();
    for r in (0..3_000).step_by(97) {
        record.clear();
        for f in 0..raw.num_fields() {
            record.push(raw.value(r, f));
        }
        let p_raw = model.predict_raw(&record);
        let p_binned = model.predict_binned(&binned, r);
        assert!((p_raw - p_binned).abs() < 1e-9, "record {r}: raw {p_raw} vs binned {p_binned}");
    }
}

#[test]
fn tree_tables_reproduce_model_predictions() {
    let (data, mirror) = generate_binned(Benchmark::Higgs, 4_000, 12);
    let (model, _) = train(&data, &mirror, &train_cfg(Benchmark::Higgs, 6));
    let absents: Vec<u32> = data.binnings().iter().map(|b| b.absent_bin()).collect();
    for r in (0..4_000).step_by(131) {
        let mut margin = model.base_score;
        for tree in &model.trees {
            let table = tree.to_table();
            let bins: Vec<u32> =
                table.fields_used.iter().map(|&f| data.bin(r, f as usize)).collect();
            let abs: Vec<u32> = table.fields_used.iter().map(|&f| absents[f as usize]).collect();
            let (w, _) = table.walk(&bins, &abs);
            margin += f64::from(w);
        }
        let expect = model.margin_binned(&data, r);
        assert!(
            (margin - expect).abs() < 1e-4,
            "record {r}: table margin {margin} vs model {expect}"
        );
    }
}
