//! # booster-repro
//!
//! Top-level facade for the Booster reproduction workspace. Re-exports the
//! public APIs of the member crates so examples and downstream users can
//! depend on a single crate.
//!
//! - [`gbdt`] — histogram-based gradient boosting decision trees
//!   (training + inference), the workload Booster accelerates.
//! - [`dram`] — cycle-level high-bandwidth DRAM simulator (DRAMSim2
//!   equivalent, Table IV of the paper).
//! - [`sim`] — the Booster accelerator timing/energy/area models and the
//!   Ideal CPU / Ideal GPU / inter-record baselines.
//! - [`datagen`] — deterministic synthetic equivalents of the paper's five
//!   evaluation datasets (Table III).
//! - [`serve`] — online scoring service over the flat-ensemble engine:
//!   micro-batching scheduler, versioned model registry with hot-swap,
//!   and a `std::net` TCP front-end.
//! - [`dist`] — distributed data-parallel training: record-sharded
//!   workers exchanging histogram lanes behind a `Comm` trait
//!   (in-process channels or localhost TCP), bit-identical to local
//!   training.
//! - [`obs`] — the unified telemetry subsystem: process-wide metrics
//!   registry (counters, gauges, log-bucketed histograms), span tracing
//!   with a Chrome trace-event exporter, and a plain-text introspection
//!   endpoint. All the other layers report into it.

pub use booster_datagen as datagen;
pub use booster_dist as dist;
pub use booster_dram as dram;
pub use booster_gbdt as gbdt;
pub use booster_obs as obs;
pub use booster_serve as serve;
pub use booster_sim as sim;
